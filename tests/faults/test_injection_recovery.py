"""End-to-end fault injection + recovery across the NVMe/PCIe/Eth stack."""

import pytest

from repro.core import StreamerVariant, build_snacc_system
from repro.core.bench import SnaccPerf
from repro.errors import PCIeError, RetryExhaustedError, StreamerError
from repro.faults import FaultConfig, FaultPlan
from repro.net import EthernetFrame, EthernetMac
from repro.sim import Simulator
from repro.sim.stats import FaultStats
from repro.systems import HostSystemConfig, build_host_system
from repro.units import KiB, MiB


def snacc_with_faults(faults):
    sim = Simulator()
    system = build_snacc_system(
        sim, StreamerVariant.URAM,
        HostSystemConfig(functional=False, faults=faults))
    system.initialize()
    return sim, system


class TestDisabledIsInert:
    def test_zero_rate_config_attaches_nothing(self):
        _, system = snacc_with_faults(FaultConfig())
        assert system.host.fault_plan is None
        assert system.host.fault_stats is None
        assert system.streamer._fault_plan is None

    def test_none_config_attaches_nothing(self):
        _, system = snacc_with_faults(None)
        assert system.host.fault_plan is None


class TestStreamerRecovery:
    def test_injected_failures_are_retried_to_success(self):
        sim, system = snacc_with_faults(FaultConfig(nvme_cmd_fail_rate=0.05))
        perf = SnaccPerf(sim, system.user)
        res = sim.run_process(perf.rand_read(1 * MiB))
        stats = system.host.fault_stats
        assert res.total_bytes == 1 * MiB
        assert stats.nvme_failures_injected > 0
        assert stats.retries >= stats.nvme_failures_injected
        assert stats.retry_exhausted == 0

    def test_counters_reproducible_across_runs(self):
        cfg = FaultConfig(nvme_cmd_fail_rate=0.05, nvme_cqe_delay_rate=0.02,
                          pcie_tlp_loss_rate=0.005,
                          pcie_tlp_corrupt_rate=0.005)
        results = []
        for _ in range(2):
            sim, system = snacc_with_faults(cfg)
            perf = SnaccPerf(sim, system.user)
            res = sim.run_process(perf.rand_read(1 * MiB))
            results.append((res.gbps, system.host.fault_stats.as_dict()))
        assert results[0] == results[1]

    def test_exhausted_retry_budget_surfaces_typed_error(self):
        """Every attempt fails -> bounded retries -> error, never a hang."""
        sim, system = snacc_with_faults(
            FaultConfig(nvme_cmd_fail_rate=1.0, retry_limit=2))

        def body():
            got = yield from system.user.read(0, 4 * KiB, functional=False)
            return got

        with pytest.raises(StreamerError, match="0x281"):
            sim.run_process(body())
        stats = system.host.fault_stats
        assert stats.retry_exhausted == 1
        assert stats.retries == 2

    def test_cqe_delay_past_timeout_is_recovered_or_aborted(self):
        """Delays beyond the command timeout wake the watchdog."""
        sim, system = snacc_with_faults(FaultConfig(
            nvme_cqe_delay_rate=1.0, nvme_cqe_delay_ns=500_000,
            command_timeout_ns=100_000, retry_limit=1))

        def body():
            yield from system.user.read(0, 4 * KiB, functional=False)

        with pytest.raises(StreamerError):  # COMMAND_ABORTED surfaced
            sim.run_process(body())
        assert system.host.fault_stats.timeouts >= 2


class TestSpdkRecovery:
    def test_retried_to_success(self, sim):
        system = build_host_system(
            sim, HostSystemConfig(functional=False,
                                  faults=FaultConfig(nvme_cmd_fail_rate=0.2)))
        drv = system.spdk_driver()
        sim.run_process(drv.initialize())
        buf = drv.alloc_buffer(64 * KiB)

        def body():
            from repro.nvme import IoOpcode
            for i in range(32):
                yield from drv.io_and_wait(IoOpcode.READ, i * 16, 64 * KiB,
                                           buf)

        sim.run_process(body())  # no raise: every failure was absorbed
        assert system.fault_stats.nvme_failures_injected > 0
        assert system.fault_stats.retries > 0
        assert system.fault_stats.retry_exhausted == 0

    def test_exhaustion_raises_retry_exhausted_error(self, sim):
        system = build_host_system(
            sim, HostSystemConfig(
                functional=False,
                faults=FaultConfig(nvme_cmd_fail_rate=1.0, retry_limit=2)))
        drv = system.spdk_driver()
        sim.run_process(drv.initialize())
        buf = drv.alloc_buffer(4 * KiB)

        def body():
            from repro.nvme import IoOpcode
            yield from drv.io_and_wait(IoOpcode.READ, 0, 4 * KiB, buf)

        with pytest.raises(RetryExhaustedError):
            sim.run_process(body())
        assert system.fault_stats.retry_exhausted == 1


class TestPcieReplay:
    def test_replay_budget_exceeded_raises(self, sim):
        """A link that loses every TLP exhausts its replay budget."""
        system = build_host_system(
            sim, HostSystemConfig(functional=False,
                                  faults=FaultConfig(pcie_tlp_loss_rate=1.0)))
        drv = system.spdk_driver()
        with pytest.raises(PCIeError):
            sim.run_process(drv.initialize())
        assert system.fault_stats.pcie_tlp_dropped > 0

    def test_occasional_loss_is_replayed_transparently(self, sim):
        system = build_host_system(
            sim, HostSystemConfig(
                functional=False,
                faults=FaultConfig(pcie_tlp_loss_rate=0.01,
                                   pcie_tlp_corrupt_rate=0.01)))
        drv = system.spdk_driver()
        sim.run_process(drv.initialize())
        buf = drv.alloc_buffer(256 * KiB)

        def body():
            from repro.nvme import IoOpcode
            for i in range(8):
                yield from drv.io_and_wait(IoOpcode.READ, i * 64, 256 * KiB,
                                           buf)

        sim.run_process(body())
        assert system.fault_stats.pcie_replays > 0


class TestEthernetDrops:
    def test_data_drops_are_counted(self, sim):
        a = EthernetMac(sim, name="a")
        b = EthernetMac(sim, name="b")
        a.connect(b)
        plan = FaultPlan(FaultConfig(eth_data_drop_rate=1.0))
        stats = FaultStats()
        a.attach_faults(plan, stats)

        def sender():
            for _ in range(5):
                yield from a.send(EthernetFrame(payload_bytes=1024))

        sim.run_process(sender())
        sim.run()
        assert b.rx_frames == 0
        assert stats.eth_data_dropped == 5
        assert a.tx_frames == 5  # sender is unaware, as on a real wire
