"""FaultConfig validation and the FaultPlan determinism contract."""

import pytest

from repro.errors import ConfigError
from repro.faults import FaultConfig, FaultPlan


class TestFaultConfig:
    def test_defaults_are_disabled(self):
        cfg = FaultConfig()
        assert not cfg.enabled

    def test_any_rate_enables(self):
        assert FaultConfig(nvme_cmd_fail_rate=0.01).enabled
        assert FaultConfig(eth_ctrl_drop_rate=0.5).enabled

    def test_rates_validated(self):
        with pytest.raises(ConfigError):
            FaultConfig(nvme_cmd_fail_rate=1.5)
        with pytest.raises(ConfigError):
            FaultConfig(pcie_tlp_loss_rate=-0.1)

    def test_recovery_params_validated(self):
        with pytest.raises(ConfigError):
            FaultConfig(retry_limit=-1)
        with pytest.raises(ConfigError):
            FaultConfig(command_timeout_ns=0)

    def test_backoff_is_capped_exponential(self):
        cfg = FaultConfig(backoff_base_ns=1000, backoff_cap_ns=5000)
        assert cfg.backoff_ns(1) == 1000
        assert cfg.backoff_ns(2) == 2000
        assert cfg.backoff_ns(3) == 4000
        assert cfg.backoff_ns(4) == 5000   # capped
        assert cfg.backoff_ns(10) == 5000


class TestFaultPlanDeterminism:
    """The contract: decision k at a site depends only on (seed, site, k)."""

    def test_same_seed_same_decisions(self):
        a = FaultPlan(FaultConfig(nvme_cmd_fail_rate=0.3)).site("ctrl.cmd")
        b = FaultPlan(FaultConfig(nvme_cmd_fail_rate=0.3)).site("ctrl.cmd")
        assert [a.flip(0.3) for _ in range(200)] \
            == [b.flip(0.3) for _ in range(200)]

    def test_different_seed_different_decisions(self):
        a = FaultPlan(FaultConfig(nvme_cmd_fail_rate=0.3, seed=1)).site("s")
        b = FaultPlan(FaultConfig(nvme_cmd_fail_rate=0.3, seed=2)).site("s")
        assert [a.flip(0.3) for _ in range(200)] \
            != [b.flip(0.3) for _ in range(200)]

    def test_sites_are_independent_of_creation_order(self):
        cfg = FaultConfig(nvme_cmd_fail_rate=0.3)
        plan_ab = FaultPlan(cfg)
        s1 = plan_ab.site("alpha")
        s2 = plan_ab.site("beta")
        plan_ba = FaultPlan(cfg)
        t2 = plan_ba.site("beta")   # reverse creation order
        t1 = plan_ba.site("alpha")
        assert [s1.flip(0.3) for _ in range(50)] \
            == [t1.flip(0.3) for _ in range(50)]
        assert [s2.flip(0.3) for _ in range(50)] \
            == [t2.flip(0.3) for _ in range(50)]

    def test_flip_always_draws_even_at_rate_zero(self):
        """Rate 0 must consume the stream: position k stays meaningful."""
        cfg = FaultConfig(nvme_cmd_fail_rate=0.5)
        a = FaultPlan(cfg).site("s")
        b = FaultPlan(cfg).site("s")
        assert not any(a.flip(0.0) for _ in range(10))  # never fires ...
        assert a.draws == 10                            # ... always draws
        burned = [b.flip(0.0) for _ in range(10)]
        assert burned == [False] * 10
        # both sites are now at stream position 10 and agree from there on
        assert [a.flip(0.5) for _ in range(50)] \
            == [b.flip(0.5) for _ in range(50)]

    def test_seed_for_is_stable(self):
        plan = FaultPlan(FaultConfig(nvme_cmd_fail_rate=0.1))
        one = plan.seed_for("ssd.ctrl.cmd")
        two = plan.seed_for("ssd.ctrl.cmd")
        assert one.entropy == two.entropy
