"""The content-addressed result cache: keying, atomicity, integration."""

from pathlib import Path

from repro.bench.cache import (CACHE_DIR_ENV, ResultCache, code_fingerprint,
                               default_cache_dir)
from repro.bench.jobs import build_plan, execute_plan, render_report


class TestResultCache:
    def test_store_load_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path, "fp")
        payload = [{"series": "bw", "measured": 1.5}]
        cache.store("fn", {"a": 1}, payload)
        assert cache.load("fn", {"a": 1}) == payload
        assert cache.hits == 1

    def test_kwargs_change_misses(self, tmp_path):
        cache = ResultCache(tmp_path, "fp")
        cache.store("fn", {"a": 1}, "x")
        assert cache.load("fn", {"a": 2}) is None
        assert cache.misses == 1

    def test_fingerprint_change_misses(self, tmp_path):
        ResultCache(tmp_path, "fp-old").store("fn", {"a": 1}, "x")
        fresh = ResultCache(tmp_path, "fp-new")
        assert fresh.load("fn", {"a": 1}) is None

    def test_corrupt_entry_reads_as_miss(self, tmp_path):
        cache = ResultCache(tmp_path, "fp")
        cache.store("fn", {}, "x")
        path = cache._path(cache.key("fn", {}))
        path.write_text("{ torn write")
        assert cache.load("fn", {}) is None

    def test_store_is_atomic_no_temp_left_behind(self, tmp_path):
        cache = ResultCache(tmp_path, "fp")
        for i in range(3):
            cache.store("fn", {"i": i}, list(range(i)))
        leftovers = [p for p in tmp_path.rglob("*") if p.suffix != ".json"
                     and p.is_file()]
        assert leftovers == []

    def test_clear(self, tmp_path):
        root = tmp_path / "cache"
        ResultCache(root, "fp").store("fn", {}, "x")
        assert ResultCache.clear(root) is True
        assert not root.exists()
        assert ResultCache.clear(root) is False


class TestCodeFingerprint:
    def make_tree(self, tmp_path):
        root = tmp_path / "pkg"
        root.mkdir()
        (root / "a.py").write_text("A = 1\n")
        (root / "b.py").write_text("B = 2\n")
        return root

    def test_stable_for_unchanged_tree(self, tmp_path):
        root = self.make_tree(tmp_path)
        assert code_fingerprint([root]) == code_fingerprint([root])

    def test_edit_changes_fingerprint(self, tmp_path):
        root = self.make_tree(tmp_path)
        before = code_fingerprint([root])
        (root / "a.py").write_text("A = 99\n")
        assert code_fingerprint([root]) != before

    def test_new_file_changes_fingerprint(self, tmp_path):
        root = self.make_tree(tmp_path)
        before = code_fingerprint([root])
        (root / "c.py").write_text("")
        assert code_fingerprint([root]) != before

    def test_rename_changes_fingerprint(self, tmp_path):
        root = self.make_tree(tmp_path)
        before = code_fingerprint([root])
        (root / "a.py").rename(root / "z.py")
        assert code_fingerprint([root]) != before

    def test_default_covers_the_repro_package(self):
        # a real fingerprint is cheap and deterministic within a process
        assert code_fingerprint() == code_fingerprint()

    def test_data_file_edit_changes_fingerprint(self, tmp_path):
        # the SIM009 stale-cache hole: non-.py inputs must invalidate too
        root = self.make_tree(tmp_path)
        (root / "profiles.json").write_text('{"depth": 32}\n')
        before = code_fingerprint([root])
        (root / "profiles.json").write_text('{"depth": 64}\n')
        assert code_fingerprint([root]) != before

    def test_new_data_file_changes_fingerprint(self, tmp_path):
        root = self.make_tree(tmp_path)
        before = code_fingerprint([root])
        (root / "table.csv").write_text("a,b\n1,2\n")
        assert code_fingerprint([root]) != before

    def test_unrelated_extension_is_ignored(self, tmp_path):
        root = self.make_tree(tmp_path)
        before = code_fingerprint([root])
        (root / "scratch.log").write_text("noise\n")
        assert code_fingerprint([root]) == before

    def test_extra_files_are_hashed(self, tmp_path):
        root = self.make_tree(tmp_path)
        config = tmp_path / "pyproject.toml"
        config.write_text("[tool.x]\nv = 1\n")
        before = code_fingerprint([root], extra_files=[config])
        assert before != code_fingerprint([root])
        config.write_text("[tool.x]\nv = 2\n")
        assert code_fingerprint([root], extra_files=[config]) != before

    def test_default_includes_pyproject(self, monkeypatch):
        # editing the checked-out pyproject.toml must invalidate the cache;
        # simulate by pointing the helper at a copy and comparing digests
        import repro.bench.cache as cache_mod

        baseline = code_fingerprint()
        monkeypatch.setattr(cache_mod, "_project_config_files", lambda: [])
        assert code_fingerprint() != baseline

    def test_default_cache_dir_env_override(self, monkeypatch):
        monkeypatch.delenv(CACHE_DIR_ENV, raising=False)
        assert default_cache_dir() == Path(".bench_cache")
        monkeypatch.setenv(CACHE_DIR_ENV, "/tmp/elsewhere")
        assert default_cache_dir() == Path("/tmp/elsewhere")


class TestExecutePlanWithCache:
    def plan(self):
        return build_plan("tiny", only={"table1"})

    def test_second_run_is_all_hits(self, tmp_path):
        plan = self.plan()
        n_jobs = sum(len(s.jobs) for s in plan)
        first_cache = ResultCache(tmp_path, "fp")
        first, first_stats = execute_plan(plan, cache=first_cache)
        assert first_stats.executed == n_jobs
        assert first_stats.hits == 0
        second, second_stats = execute_plan(
            plan, cache=ResultCache(tmp_path, "fp"))
        assert second_stats.executed == 0
        assert second_stats.hits == n_jobs
        assert render_report(first)[0] == render_report(second)[0]

    def test_fingerprint_change_resimulates(self, tmp_path):
        plan = self.plan()
        execute_plan(plan, cache=ResultCache(tmp_path, "fp-a"))
        _, stats = execute_plan(plan, cache=ResultCache(tmp_path, "fp-b"))
        assert stats.hits == 0
        assert stats.executed == sum(len(s.jobs) for s in plan)

    def test_no_cache_bypasses_everything(self, tmp_path):
        plan = self.plan()
        _, stats = execute_plan(plan, cache=None)
        assert stats.hits == stats.misses == 0
        assert stats.executed == sum(len(s.jobs) for s in plan)
        assert list(tmp_path.iterdir()) == []
