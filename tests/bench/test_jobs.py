"""The parallel job runner: plan shape, determinism, merge fidelity."""

import pickle

from repro.bench.experiments.ablations import ablation_flow_control
from repro.bench.experiments.fig6_fig7 import (fig6_from_results,
                                               fig7_from_results,
                                               run_case_study_all)
from repro.bench.experiments.fleet import run_fleet_suite
from repro.bench.jobs import (EXPERIMENTS, POINT_FUNCTIONS, build_plan,
                              execute_plan, render_report)
from repro.bench.paper import Band
from repro.bench.runner import ExperimentResult, ExperimentRow

import pytest


class TestPlan:
    def test_declared_order_matches_experiments(self):
        plan = build_plan("tiny")
        assert [s.experiment for s in plan] == list(EXPERIMENTS)

    def test_every_job_fn_is_registered(self):
        for stage in build_plan("tiny"):
            for spec in stage.jobs:
                assert spec.fn in POINT_FUNCTIONS, spec.label

    def test_specs_are_picklable_and_hashable(self):
        # spawn-safety: specs must cross a process boundary intact.
        for stage in build_plan("tiny"):
            for spec in stage.jobs:
                assert pickle.loads(pickle.dumps(spec)) == spec
                hash(spec)

    def test_plan_is_reproducible(self):
        assert build_plan("tiny") == build_plan("tiny")

    def test_only_filters_stages(self):
        plan = build_plan("tiny", only={"fig4a", "ablation_fc"})
        assert [s.experiment for s in plan] == ["fig4a", "ablation_fc"]

    def test_only_rejects_unknown_experiment(self):
        with pytest.raises(ValueError, match="unknown experiment"):
            build_plan("tiny", only={"fig9"})

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError, match="unknown profile"):
            build_plan("huge")

    def test_jobs_must_be_positive(self):
        with pytest.raises(ValueError, match="jobs must be >= 1"):
            execute_plan(build_plan("tiny", only={"table1"}), jobs=0)


class TestSerialParallelEquivalence:
    #: small but multi-stage subset: pure-arithmetic, simulation-heavy,
    #: integer-valued, fault-injected, and fleet rows all cross the pool.
    SUBSET = {"table1", "fig4b", "ablation_fc", "ablation_faults", "fleet"}

    def test_rows_and_text_identical(self):
        plan = build_plan("tiny", only=self.SUBSET)
        serial, serial_stats = execute_plan(plan, jobs=1)
        parallel, parallel_stats = execute_plan(plan, jobs=4)
        assert [r.rows for r in serial] == [r.rows for r in parallel]
        serial_text, serial_ok = render_report(serial)
        parallel_text, parallel_ok = render_report(parallel)
        assert serial_text == parallel_text
        assert serial_ok == parallel_ok
        assert serial_stats.executed == parallel_stats.executed \
            == sum(len(s.jobs) for s in plan)


class TestMergeFidelity:
    def test_ablation_stage_matches_direct_run(self):
        # the point decomposition must reproduce the historical
        # function's result exactly (id, title, and every row).
        plan = build_plan("tiny", only={"ablation_fc"})
        (merged,), _ = execute_plan(plan, jobs=1)
        direct = ablation_flow_control(n_frames=60)
        assert merged.experiment == direct.experiment
        assert merged.title == direct.title
        assert merged.rows == direct.rows

    def test_case_study_stage_matches_direct_run(self):
        plan = build_plan("tiny", only={"case_study"})
        (fig6, fig7), _ = execute_plan(plan, jobs=1)
        runs = run_case_study_all(n_images=6, warmup_images=1)
        assert fig6.rows == fig6_from_results(runs).rows
        assert fig7.rows == fig7_from_results(runs).rows

    def test_fleet_stage_matches_direct_run(self):
        plan = build_plan("tiny", only={"fleet"})
        (merged,), _ = execute_plan(plan, jobs=1)
        direct = run_fleet_suite(n_requests=160, n_objects=128,
                                 scale_interarrival_ns=4000,
                                 skew_interarrival_ns=6000,
                                 incast_senders=3, incast_mib=1)
        assert merged.experiment == direct.experiment
        assert merged.title == direct.title
        assert merged.rows == direct.rows


class TestRenderReport:
    def make(self, measured):
        result = ExperimentResult("ablation_x", "synthetic ablation")
        result.add("bw", "sys", measured, "GB/s", Band(1.0, 2.0))
        return result

    def test_ok_requires_every_result_in_band(self):
        text, ok = render_report([self.make(1.5)])
        assert ok and text.endswith("ALL PAPER BANDS HIT\n")

    def test_out_of_band_ablation_fails_the_run(self):
        # regression: ablation rows used to be excluded from the
        # verdict, so an out-of-band ablation still reported success.
        text, ok = render_report([self.make(9.9)])
        assert not ok
        assert text.endswith("SOME ROWS OUT OF BAND\n")

    def test_report_contains_each_table_once(self):
        text, _ = render_report([self.make(1.5), self.make(1.2)])
        assert text.count("== ablation_x: synthetic ablation ==") == 2


class TestRowSerialization:
    def test_round_trip_preserves_floats_exactly(self):
        row = ExperimentRow("s", "sys", 0.1 + 0.2, "GB/s", Band(1 / 3, 2.0))
        back = ExperimentRow.from_json(row.to_json())
        assert back == row
        assert back.measured == row.measured

    def test_round_trip_without_band(self):
        row = ExperimentRow("s", "sys", 42, "frames")
        assert ExperimentRow.from_json(row.to_json()) == row


class TestCoarseningPlan:
    def test_coarsening_reaches_only_fleet_jobs(self):
        plan = build_plan("tiny", coarsening="per_frame")
        for stage in plan:
            for spec in stage.jobs:
                kwargs = spec.kwargs_dict()
                if stage.experiment == "fleet":
                    assert kwargs["coarsening"] == "per_frame", spec.label
                else:
                    assert "coarsening" not in kwargs, spec.label

    def test_default_plan_uses_train(self):
        plan = build_plan("tiny", only={"fleet"})
        for spec in plan[0].jobs:
            assert spec.kwargs_dict()["coarsening"] == "train"

    def test_unknown_coarsening_rejected(self):
        with pytest.raises(ValueError, match="unknown coarsening"):
            build_plan("tiny", coarsening="warp")

    def test_modes_render_identical_tiny_fleet_reports(self):
        texts = {}
        for mode in ("train", "per_frame"):
            results, _ = execute_plan(
                build_plan("tiny", only={"fleet"}, coarsening=mode))
            texts[mode], _ = render_report(results)
        assert texts["train"] == texts["per_frame"]
