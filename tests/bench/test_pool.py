"""Warm worker pool + job batching tests.

Pins the contract of ``repro.bench.pool`` (one persistent executor,
rebuilt only on worker-count changes, warmup time recorded) and the
batching dispatch in ``execute_plan``: the rendered report must stay
byte-identical at any ``--jobs`` count, and cache semantics must be
unchanged by batching.
"""

import pytest

from repro.bench import pool as pool_mod
from repro.bench.cache import ResultCache
from repro.bench.jobs import (build_plan, execute_job, execute_plan,
                              render_report, run_batch)

TINY_SUBSET = {"table1", "ablation_ooo", "ablation_fc"}


def _tiny_plan():
    return build_plan("tiny", only=TINY_SUBSET)


class TestWarmPool:
    def test_same_worker_count_reuses_the_executor(self):
        a = pool_mod.get_pool(2)
        b = pool_mod.get_pool(2)
        assert a is b

    def test_worker_count_change_rebuilds(self):
        a = pool_mod.get_pool(2)
        b = pool_mod.get_pool(3)
        assert b is not a
        assert pool_mod.get_pool(3) is b

    def test_warmup_time_is_recorded(self):
        pool_mod.shutdown_pool()
        assert pool_mod.get_pool(2) is not None
        warmup = pool_mod.last_warmup_seconds()
        assert warmup is not None and warmup >= 0.0

    def test_shutdown_then_get_builds_fresh(self):
        a = pool_mod.get_pool(2)
        pool_mod.shutdown_pool()
        b = pool_mod.get_pool(2)
        assert b is not a

    def test_rejects_nonpositive_worker_count(self):
        with pytest.raises(ValueError, match="workers"):
            pool_mod.get_pool(0)


class TestRunBatch:
    def test_results_align_positionally(self):
        specs = [spec for stage in _tiny_plan() for spec in stage.jobs]
        batch = run_batch(specs)
        assert batch == [execute_job(spec) for spec in specs]

    def test_empty_batch(self):
        assert run_batch([]) == []


class TestBatchedExecution:
    def test_report_byte_identical_at_jobs_1_2_4(self):
        texts = {}
        verdicts = {}
        for jobs in (1, 2, 4):
            results, stats = execute_plan(_tiny_plan(), jobs=jobs)
            texts[jobs], verdicts[jobs] = render_report(results)
            assert stats.executed == sum(
                len(stage.jobs) for stage in _tiny_plan())
        assert texts[1] == texts[2] == texts[4]
        assert verdicts[1] == verdicts[2] == verdicts[4]

    def test_parallel_run_populates_cache_for_serial(self, tmp_path):
        cache = ResultCache(tmp_path, "fingerprint")
        plan = _tiny_plan()
        parallel, stats_parallel = execute_plan(plan, jobs=2, cache=cache)
        assert stats_parallel.executed > 0
        cached, stats_cached = execute_plan(plan, jobs=1, cache=cache)
        assert stats_cached.executed == 0
        assert stats_cached.hits == stats_parallel.misses
        assert render_report(cached) == render_report(parallel)

    def test_single_pending_job_runs_in_process(self, tmp_path):
        # with every job but one cached, the one miss is run inline —
        # no point waking the pool for a single job
        cache = ResultCache(tmp_path, "fingerprint")
        almost = _tiny_plan()
        almost[0].jobs.pop(0)
        execute_plan(almost, jobs=1, cache=cache)
        results, stats = execute_plan(_tiny_plan(), jobs=4, cache=cache)
        assert stats.executed == 1
        text, _ = render_report(results)
        assert text == render_report(execute_plan(_tiny_plan(), jobs=1)[0])[0]
