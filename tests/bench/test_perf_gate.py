"""Perf-harness gates: verdicts, baseline validation, self-consistency.

These tests exist because a committed baseline once recorded a --jobs 4
speedup of 0.787x while the harness gated >= 2.0x — a contradiction
that survived because the live gate skipped on the small hosts that ran
it.  The gate logic is pure (:func:`parallel_gate_verdict`,
:func:`fork_gate_verdict`), schema validation is pure
(:func:`validate_baseline`), and the committed baseline is itself
validated, on every host.
"""

import importlib.util
import json
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]

_spec = importlib.util.spec_from_file_location(
    "perf_harness", REPO_ROOT / "scripts" / "perf.py")
perf = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(perf)


def doc(host_cores, jobs4_speedup, schema=None, fork=None):
    """A structurally valid baseline document with the given sweep."""
    fork_section = {
        "branches": perf.FORK_BRANCHES,
        "warm_bytes": perf.FORK_WARM_BYTES,
        "branch_bytes": perf.FORK_BRANCH_BYTES,
        "mechanism": "fork", "forked_seconds": 0.3, "cold_seconds": 1.8,
        "speedup": 6.0, "identical": True,
    }
    if fork is not None:
        fork_section.update(fork)
    return {
        "schema": perf.SCHEMA if schema is None else schema,
        "kernel": {"scheduler": "calendar", "n_procs": perf.N_PROCS,
                   "n_iters": perf.N_ITERS, "host_cores": host_cores,
                   "events": 192128, "seconds": 0.2,
                   "events_per_sec": 1_000_000},
        "parallel_runner": {
            "n_jobs": 60, "host_cores": host_cores,
            "advisory": host_cores < perf.GATE_MIN_CORES,
            "sweep": [
                # jobs=1 runs in-process: no pool, so warmup is 0.0 by
                # definition (schema 4 rejects the old null spelling)
                {"jobs": 1, "seconds": 5.0, "speedup": 1.0,
                 "warmup_seconds": 0.0},
                {"jobs": perf.GATE_JOBS, "seconds": 5.0 / jobs4_speedup,
                 "speedup": jobs4_speedup, "warmup_seconds": 0.3},
            ],
        },
        "fork_sweep": fork_section,
    }


class TestParallelGateVerdict:
    def test_sub_threshold_sweep_fails(self):
        # the exact historical contradiction: 0.787x on a capable host
        assert perf.parallel_gate_verdict(0.787, 64) is False

    def test_threshold_is_inclusive(self):
        assert perf.parallel_gate_verdict(perf.GATE_MIN_SPEEDUP,
                                          perf.GATE_MIN_CORES) is True
        assert perf.parallel_gate_verdict(perf.GATE_MIN_SPEEDUP - 0.01,
                                          perf.GATE_MIN_CORES) is False

    def test_small_hosts_are_exempt(self):
        assert perf.parallel_gate_verdict(0.5, 1) is None
        assert perf.parallel_gate_verdict(0.5,
                                          perf.GATE_MIN_CORES - 1) is None


class TestForkGateVerdict:
    def test_threshold_is_inclusive(self):
        assert perf.fork_gate_verdict(perf.FORK_GATE_MIN_SPEEDUP,
                                      True) is True
        assert perf.fork_gate_verdict(perf.FORK_GATE_MIN_SPEEDUP - 0.01,
                                      True) is False

    def test_equivalence_break_fails_at_any_speedup(self):
        # a fast-but-wrong fork is the worst possible outcome
        assert perf.fork_gate_verdict(100.0, False) is False

    def test_no_small_host_exemption(self):
        # prefix sharing needs no cores: the verdict is never None
        assert perf.fork_gate_verdict(0.5, True) is False


class TestValidateBaseline:
    def test_healthy_doc_validates(self):
        assert perf.validate_baseline(doc(1, 1.0)) is None

    def test_old_schema_is_stale(self):
        stale = perf.validate_baseline(doc(8, 2.6, schema=perf.SCHEMA - 1))
        assert stale is not None

    def test_null_warmup_seconds_is_stale(self):
        bad = doc(1, 1.0)
        bad["parallel_runner"]["sweep"][0]["warmup_seconds"] = None
        stale = perf.validate_baseline(bad)
        assert stale is not None and "warmup_seconds" in stale


class TestBaselineContradiction:
    def test_gate_failing_sweep_from_capable_host(self):
        message = perf.baseline_contradiction(doc(64, 0.787))
        assert message is not None and "0.79x" in message

    def test_small_host_sweep_is_consistent(self):
        # a 1-core host legitimately records ~1x: gate inapplicable
        assert perf.baseline_contradiction(doc(1, 0.787)) is None

    def test_passing_sweep_is_consistent(self):
        assert perf.baseline_contradiction(doc(8, 2.6)) is None

    def test_doc_without_host_cores_is_ignored(self):
        legacy = doc(8, 0.787)
        del legacy["parallel_runner"]["host_cores"]
        assert perf.baseline_contradiction(legacy) is None

    def test_doc_without_sweep_is_ignored(self):
        assert perf.baseline_contradiction({"schema": perf.SCHEMA}) is None

    def test_non_identical_fork_sweep_contradicts(self):
        message = perf.baseline_contradiction(
            doc(1, 1.0, fork={"identical": False}))
        assert message is not None and "byte-identical" in message

    def test_sub_gate_fork_speedup_contradicts(self):
        message = perf.baseline_contradiction(
            doc(1, 1.0, fork={"speedup": 1.4}))
        assert message is not None and "1.40x" in message

    def test_replay_fallback_speedup_is_not_judged(self):
        # recorded on a fork-less host: the speedup is informational
        assert perf.baseline_contradiction(
            doc(1, 1.0, fork={"mechanism": "replay",
                              "speedup": 1.0})) is None


class TestCheckExitCodes:
    @pytest.fixture
    def baseline(self, tmp_path, monkeypatch):
        path = tmp_path / "BENCH_sim_kernel.json"
        monkeypatch.setattr(perf, "BASELINE_FILE", path)
        return path

    def test_missing_baseline_exits_2(self, baseline):
        assert perf.check(tolerance=1.3) == 2

    def test_stale_schema_exits_2(self, baseline):
        baseline.write_text(json.dumps(doc(8, 2.6, schema=perf.SCHEMA - 1)))
        assert perf.check(tolerance=1.3) == 2

    def test_null_warmup_seconds_exits_2(self, baseline):
        bad = doc(8, 2.6)
        bad["parallel_runner"]["sweep"][0]["warmup_seconds"] = None
        baseline.write_text(json.dumps(bad))
        assert perf.check(tolerance=1.3) == 2

    def test_self_contradictory_baseline_exits_1_on_any_host(self, baseline):
        # fires before any timing: judged from the committed file alone,
        # so even a 1-core CI host rejects the contradictory baseline
        baseline.write_text(json.dumps(doc(64, 0.787)))
        assert perf.check(tolerance=1.3) == 1

    def test_non_identical_fork_baseline_exits_1(self, baseline):
        baseline.write_text(
            json.dumps(doc(1, 1.0, fork={"identical": False})))
        assert perf.check(tolerance=1.3) == 1

    def test_measure_refuses_contradictory_baseline(self, baseline,
                                                    monkeypatch):
        monkeypatch.setattr(perf, "measure",
                            lambda **kw: doc(64, 0.787))
        assert perf.main([]) == 1
        assert not baseline.exists()


class TestCommittedBaseline:
    """The committed file must satisfy the harness that gates on it —
    this is the test that would have caught the original 0.787x commit."""

    def test_baseline_is_current_and_self_consistent(self):
        committed = json.loads(
            (REPO_ROOT / "BENCH_sim_kernel.json").read_text())
        assert committed["schema"] == perf.SCHEMA
        assert committed["kernel"]["n_procs"] == perf.N_PROCS
        assert committed["kernel"]["n_iters"] == perf.N_ITERS
        assert "host_cores" in committed["kernel"]
        assert "host_cores" in committed["parallel_runner"]
        assert perf.validate_baseline(committed) is None
        assert perf.baseline_contradiction(committed) is None

    def test_committed_sweep_advisory_flag_matches_its_host(self):
        committed = json.loads(
            (REPO_ROOT / "BENCH_sim_kernel.json").read_text())
        runner = committed["parallel_runner"]
        assert runner["advisory"] == (
            runner["host_cores"] < perf.GATE_MIN_CORES)

    def test_committed_fork_sweep_passes_its_own_gate(self):
        committed = json.loads(
            (REPO_ROOT / "BENCH_sim_kernel.json").read_text())
        fork = committed["fork_sweep"]
        assert fork["identical"] is True
        assert fork["branches"] == perf.FORK_BRANCHES
        if fork["mechanism"] == "fork":
            assert perf.fork_gate_verdict(fork["speedup"], True) is True

    def test_committed_sweep_has_no_null_warmups(self):
        committed = json.loads(
            (REPO_ROOT / "BENCH_sim_kernel.json").read_text())
        for entry in committed["parallel_runner"]["sweep"]:
            assert isinstance(entry["warmup_seconds"], float)


def doc_with_fleet(host_cores=4, speedup=3.5, identical=True):
    """A schema-5 doc whose fleet_coarsening section is fully populated."""
    d = doc(host_cores, 2.5)
    d["experiments"] = {"fig4a_seq_16MiB": {"seconds": 1.0}}
    d["fleet_coarsening"] = {
        "profile": "quick", "members": ["scale/4n", "incast"],
        "repeats": perf.COARSEN_REPEATS, "host_cores": host_cores,
        "train_seconds": 1.0, "per_frame_seconds": speedup,
        "speedup": speedup, "identical": identical,
    }
    return d


class TestCoarsenGateVerdict:
    def test_threshold_is_inclusive(self):
        assert perf.coarsen_gate_verdict(
            perf.COARSEN_GATE_MIN_RATIO, True) is True
        assert perf.coarsen_gate_verdict(
            perf.COARSEN_GATE_MIN_RATIO - 0.01, True) is False

    def test_equivalence_break_fails_at_any_speedup(self):
        assert perf.coarsen_gate_verdict(100.0, False) is False

    def test_no_host_exemption(self):
        # unlike the parallel gate there is no None case: both halves of
        # the ratio come from the same host, so the gate always applies
        assert perf.coarsen_gate_verdict(0.5, True) is False


class TestFleetCoarseningBaseline:
    def test_healthy_fleet_section_validates(self):
        d = doc_with_fleet()
        assert perf.validate_baseline(d) is None
        assert perf.baseline_contradiction(d) is None

    def test_missing_fleet_section_is_stale(self):
        d = doc_with_fleet()
        del d["fleet_coarsening"]
        assert "fleet_coarsening" in perf.validate_baseline(d)

    def test_sub_gate_speedup_contradicts(self):
        d = doc_with_fleet(speedup=2.4)
        assert "2.40x" in perf.baseline_contradiction(d)

    def test_non_identical_contradicts(self):
        d = doc_with_fleet(identical=False)
        assert "byte-identical" in perf.baseline_contradiction(d)

    def test_committed_baseline_records_passing_coarsening(self):
        committed = json.loads(
            (REPO_ROOT / "BENCH_sim_kernel.json").read_text())
        fleet = committed["fleet_coarsening"]
        assert fleet["identical"] is True
        assert perf.coarsen_gate_verdict(fleet["speedup"], True) is True
