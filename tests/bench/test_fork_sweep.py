"""Fork-sweep experiment: scales, mechanism independence, plan wiring.

The fault-storm sweep is the scenario the checkpoint/fork engine exists
for, so this is where cross-mechanism equivalence is proven *with a
fault plan in the loop*: per-site RNG streams are part of the
checkpoint, and the rows must not depend on whether branches forked,
replayed, or ran cold.
"""

import threading
import time

import pytest

from repro.bench.experiments.fork_sweep import (FORK_SWEEP_TITLE, fork_sweep,
                                                fork_sweep_point,
                                                storm_scales, storm_scenario)
from repro.bench.jobs import build_plan, execute_plan
from repro.bench.pool import shutdown_pool
from repro.bench.runner import rows_to_json
from repro.sim.snapshot import ScenarioEngine, fork_available
from repro.units import KiB

# small enough to run three mechanisms in a test, big enough to inject
# faults at the x3 end of the scale
TINY = dict(n_branches=3, warm_bytes=64 * KiB, branch_bytes=32 * KiB)

needs_fork = pytest.mark.skipif(not fork_available(),
                                reason="os.fork not available")


@pytest.fixture(autouse=True)
def single_threaded_host():
    # the engine refuses to fork next to a live warm pool: retire any
    # pool a previously-run test module left behind (see test_snapshot)
    shutdown_pool(wait=True)
    for _ in range(100):
        if threading.active_count() == 1:
            break
        time.sleep(0.05)


class TestStormScales:
    def test_spread_covers_zero_to_three_x(self):
        scales = storm_scales(16)
        assert len(scales) == 16
        assert scales[0] == 0.0 and scales[-1] == 3.0
        assert scales == sorted(scales)

    def test_single_branch_is_baseline_rate(self):
        assert storm_scales(1) == [1.0]

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            storm_scales(0)


class TestMechanismIndependence:
    def run_rows(self, mechanism):
        return fork_sweep_point(mechanism=mechanism, **TINY)

    def test_replay_equals_cold(self):
        assert rows_to_json(self.run_rows("replay")) == \
            rows_to_json(self.run_rows("cold"))

    @needs_fork
    def test_fork_equals_cold(self):
        assert rows_to_json(self.run_rows("fork")) == \
            rows_to_json(self.run_rows("cold"))

    @needs_fork
    def test_branch_payloads_identical_across_all_mechanisms(self):
        # the full payloads (event counts, clocks, complete fault-stat
        # dicts), not just the rows distilled from them
        payloads = {}
        for mechanism in ("fork", "replay", "cold"):
            setup, warm, branches = storm_scenario(
                TINY["warm_bytes"], TINY["branch_bytes"], TINY["n_branches"])
            engine = ScenarioEngine(setup, warm)
            payloads[mechanism] = engine.run(branches, mechanism=mechanism)
        assert payloads["fork"] == payloads["replay"] == payloads["cold"]
        events = [p["events"] for p in payloads["fork"]]
        assert all(isinstance(n, int) and n > 0 for n in events)

    def test_checkpoint_includes_fault_state(self):
        setup, warm, branches = storm_scenario(
            TINY["warm_bytes"], TINY["branch_bytes"], TINY["n_branches"])
        engine = ScenarioEngine(setup, warm)
        ck = engine.prepare()
        assert ck.fault_state is not None and len(ck.fault_state) > 0


class TestStormRows:
    def test_row_shape_and_fault_response(self):
        rows = fork_sweep_point(**TINY)
        assert [r.series for r in rows[:3]] == \
            ["storm_gbps", "storm_retries", "storm_injected"]
        assert len(rows) == 3 * TINY["n_branches"]
        by = {(r.series, r.system): r.measured for r in rows}
        # the suspended end of the scale injects nothing; the x3 end
        # visibly stresses the retry machinery
        assert by[("storm_injected", "x0")] == 0.0
        assert by[("storm_injected", "x3")] > 0.0
        assert by[("storm_retries", "x3")] >= by[("storm_retries", "x0")]

    def test_standalone_experiment_wraps_the_point(self):
        result = fork_sweep(mechanism="replay", **TINY)
        assert result.experiment == "fork_sweep"
        assert result.title == FORK_SWEEP_TITLE
        assert rows_to_json(result.rows) == \
            rows_to_json(fork_sweep_point(mechanism="replay", **TINY))


class TestPlanWiring:
    def test_every_profile_schedules_the_sweep_as_one_job(self):
        for profile in ("full", "quick", "tiny"):
            stages = [s for s in build_plan(profile, only={"fork_sweep"})]
            assert len(stages) == 1
            # the shared prefix lives in process memory: the whole sweep
            # must be a single job, never split across pool workers
            assert len(stages[0].jobs) == 1

    def test_stage_matches_direct_run(self):
        plan = build_plan("tiny", only={"fork_sweep"})
        (merged,), _stats = execute_plan(plan, jobs=1)
        sizes = {"n_branches": 4, "warm_bytes": 512 * KiB,
                 "branch_bytes": 64 * KiB}
        assert merged.title == FORK_SWEEP_TITLE
        assert rows_to_json(merged.rows) == \
            rows_to_json(fork_sweep_point(**sizes))
