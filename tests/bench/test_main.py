"""The ``python -m repro.bench`` CLI: argparse behaviour and caching."""

import json

import pytest

from repro.bench.__main__ import build_arg_parser, main
from repro.bench.jobs import EXPERIMENTS


class TestArgParsing:
    def test_unknown_flag_is_an_error(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--frobnicate"])
        assert exc.value.code == 2
        assert "unrecognized arguments" in capsys.readouterr().err

    def test_unknown_experiment_is_an_error(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--only", "fig9"])
        assert exc.value.code == 2
        assert "invalid choice" in capsys.readouterr().err

    def test_jobs_must_be_positive(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--jobs", "0"])
        assert exc.value.code == 2

    def test_defaults(self):
        args = build_arg_parser().parse_args([])
        assert args.jobs >= 1
        assert not args.quick and not args.no_cache

    def test_list_prints_stage_ids(self, capsys):
        assert main(["--list"]) == 0
        assert capsys.readouterr().out.splitlines() == list(EXPERIMENTS)


class TestMainRuns:
    def test_table1_reports_and_exits_zero(self, capsys, tmp_path):
        code = main(["--only", "table1", "--jobs", "1",
                     "--cache-dir", str(tmp_path / "cache")])
        out = capsys.readouterr().out
        assert code == 0
        assert "== table1: NVMe Streamer FPGA utilization ==" in out
        assert out.endswith("ALL PAPER BANDS HIT\n")

    def test_cached_rerun_is_byte_identical_and_skips_work(
            self, capsys, tmp_path):
        argv = ["--only", "table1", "--jobs", "1",
                "--cache-dir", str(tmp_path / "cache")]
        assert main(argv) == 0
        first = capsys.readouterr()
        assert main(argv) == 0
        second = capsys.readouterr()
        assert first.out == second.out
        assert "0 cache hit(s)" in first.err
        assert "0 job(s) simulated" in second.err
        assert "3 cache hit(s)" in second.err

    def test_no_cache_leaves_no_cache_dir(self, capsys, tmp_path):
        cache_dir = tmp_path / "cache"
        assert main(["--only", "table1", "--no-cache",
                     "--cache-dir", str(cache_dir)]) == 0
        assert not cache_dir.exists()

    def test_clear_cache_drops_stale_entries(self, capsys, tmp_path):
        cache_dir = tmp_path / "cache"
        argv = ["--only", "table1", "--jobs", "1",
                "--cache-dir", str(cache_dir)]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv + ["--clear-cache"]) == 0
        err = capsys.readouterr().err
        assert "cleared cache" in err
        assert "3 miss(es)" in err

    def test_json_output(self, capsys, tmp_path):
        path = tmp_path / "report.json"
        assert main(["--only", "table1", "--no-cache",
                     "--json", str(path)]) == 0
        doc = json.loads(path.read_text())
        assert doc["ok"] is True
        assert doc["results"][0]["experiment"] == "table1"
        assert doc["results"][0]["rows"], "rows must be populated"


class TestCoarseningFlag:
    def test_invalid_coarsening_is_an_error(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--coarsening", "warp"])
        assert exc.value.code == 2
        assert "invalid choice" in capsys.readouterr().err

    def test_default_is_train(self):
        args = build_arg_parser().parse_args([])
        assert args.coarsening == "train"
        assert not args.profile and args.profile_out is None

    def test_modes_share_non_fleet_cache_keys(self, capsys, tmp_path):
        # both modes over one cache: the second run may only re-simulate
        # the fleet jobs (coarsening is part of the fleet cache key only)
        cache = str(tmp_path / "cache")
        argv = ["--quick", "--only", "table1", "--jobs", "1",
                "--cache-dir", cache]
        assert main(argv + ["--coarsening", "train"]) == 0
        first = capsys.readouterr()
        assert main(argv + ["--coarsening", "per_frame"]) == 0
        second = capsys.readouterr()
        assert first.out == second.out
        assert "3 cache hit(s)" in second.err


class TestProfileFlag:
    def test_profile_prints_cumulative_stats(self, capsys, tmp_path):
        code = main(["--only", "table1", "--profile",
                     "--cache-dir", str(tmp_path / "cache")])
        captured = capsys.readouterr()
        assert code == 0
        assert "cumulative" in captured.err
        assert "ALL PAPER BANDS HIT" in captured.out

    def test_profile_out_writes_stats_file(self, capsys, tmp_path):
        out = tmp_path / "bench.prof"
        code = main(["--only", "table1", "--profile-out", str(out),
                     "--cache-dir", str(tmp_path / "cache")])
        capsys.readouterr()
        assert code == 0
        import pstats
        stats = pstats.Stats(str(out))
        assert stats.total_calls > 0

    def test_profile_forces_serial_jobs(self, capsys, tmp_path):
        code = main(["--only", "table1", "--profile", "--jobs", "4",
                     "--cache-dir", str(tmp_path / "cache")])
        captured = capsys.readouterr()
        assert code == 0
        assert "forcing --jobs 1" in captured.err
        assert "--jobs 1" in captured.err.splitlines()[-1]
