"""The experiment harness itself: bands, result tables, rendering."""

import pytest

from repro.bench import Band, ExperimentResult


class TestBand:
    def test_contains(self):
        b = Band(1.0, 2.0)
        assert b.contains(1.0) and b.contains(2.0) and b.contains(1.5)
        assert not b.contains(0.99) and not b.contains(2.01)

    def test_point_tolerance(self):
        b = Band.point(10.0, tol=0.1)
        assert b.contains(9.5) and b.contains(10.5)
        assert not b.contains(8.9)

    def test_str(self):
        assert str(Band(1.0, 1.0)) == "1.00"
        assert str(Band(1.0, 2.0)) == "1.00-2.00"


class TestExperimentResult:
    def make(self):
        r = ExperimentResult("figX", "demo")
        r.add("bw", "sysA", 5.0, "GB/s", Band(4.0, 6.0))
        r.add("bw", "sysB", 9.0, "GB/s", Band(4.0, 6.0))
        r.add("bw", "sysC", 1.0, "GB/s")  # no target
        return r

    def test_in_band_flags(self):
        r = self.make()
        assert r.row("bw", "sysA").in_band is True
        assert r.row("bw", "sysB").in_band is False
        assert r.row("bw", "sysC").in_band is None

    def test_all_in_band(self):
        r = self.make()
        assert not r.all_in_band
        r2 = ExperimentResult("y", "t")
        r2.add("s", "a", 5.0, "u", Band(4, 6))
        r2.add("s", "b", 5.0, "u")
        assert r2.all_in_band

    def test_missing_row_raises(self):
        with pytest.raises(KeyError):
            self.make().row("bw", "nope")

    def test_render_marks_violations(self):
        text = self.make().render()
        assert "[in band]" in text
        assert "[OUT OF BAND]" in text
        assert "figX" in text
