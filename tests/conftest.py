"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.sim import Simulator


@pytest.fixture
def sim():
    """A fresh simulator."""
    return Simulator()


@pytest.fixture
def rng():
    """Deterministic RNG for data generation."""
    return np.random.default_rng(0xC0FFEE)
