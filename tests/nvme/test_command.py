"""SQE/CQE wire encodings round-trip exactly."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import InvalidCommandError
from repro.nvme import CompletionEntry, IoOpcode, SubmissionEntry, StatusCode


class TestSubmissionEntry:
    def test_pack_size(self):
        sqe = SubmissionEntry(opcode=IoOpcode.READ, cid=1)
        assert len(sqe.pack()) == 64

    def test_roundtrip(self):
        sqe = SubmissionEntry(opcode=IoOpcode.WRITE, cid=0x1234, nsid=1,
                              prp1=0x1000, prp2=0x2000)
        sqe.slba = 0x1_2345_6789
        sqe.nlb = 2048
        back = SubmissionEntry.unpack(sqe.pack())
        assert back.opcode == IoOpcode.WRITE
        assert back.cid == 0x1234
        assert back.prp1 == 0x1000 and back.prp2 == 0x2000
        assert back.slba == 0x1_2345_6789
        assert back.nlb == 2048

    def test_nlb_bounds(self):
        sqe = SubmissionEntry(opcode=0, cid=0)
        with pytest.raises(InvalidCommandError):
            sqe.nlb = 0
        with pytest.raises(InvalidCommandError):
            sqe.nlb = 0x10001
        sqe.nlb = 0x10000  # max encodable
        assert sqe.nlb == 0x10000

    def test_bad_cid_rejected(self):
        with pytest.raises(InvalidCommandError):
            SubmissionEntry(opcode=0, cid=0x10000).pack()

    def test_unpack_wrong_size(self):
        with pytest.raises(InvalidCommandError):
            SubmissionEntry.unpack(b"\x00" * 32)

    @given(st.integers(0, 0xFF), st.integers(0, 0xFFFF),
           st.integers(0, (1 << 48) - 1), st.integers(1, 0x10000))
    def test_property_roundtrip(self, opcode, cid, slba, nlb):
        sqe = SubmissionEntry(opcode=opcode, cid=cid,
                              prp1=0x7000_0000, prp2=0x8000_0000)
        sqe.slba = slba
        sqe.nlb = nlb
        back = SubmissionEntry.unpack(sqe.pack())
        assert (back.opcode, back.cid, back.slba, back.nlb) == \
            (opcode, cid, slba, nlb)


class TestCompletionEntry:
    def test_pack_size(self):
        assert len(CompletionEntry(cid=1).pack()) == 16

    def test_roundtrip(self):
        cqe = CompletionEntry(cid=7, status=StatusCode.LBA_OUT_OF_RANGE,
                              sq_head=33, sq_id=2, phase=0, result=0xABCD)
        back = CompletionEntry.unpack(cqe.pack())
        assert back.cid == 7
        assert back.status == StatusCode.LBA_OUT_OF_RANGE
        assert back.sq_head == 33 and back.sq_id == 2
        assert back.phase == 0 and back.result == 0xABCD
        assert not back.ok

    def test_ok(self):
        assert CompletionEntry(cid=0).ok

    @given(st.integers(0, 0xFFFF), st.integers(0, 0x7FFF),
           st.integers(0, 1))
    def test_property_phase_status(self, cid, status, phase):
        back = CompletionEntry.unpack(
            CompletionEntry(cid=cid, status=status, phase=phase).pack())
        assert (back.cid, back.status, back.phase) == (cid, status, phase)
