"""SSD backend unit behaviour: phases, channels, service distribution."""

import pytest

from repro.errors import ConfigError
from repro.nvme import SAMSUNG_990_PRO_LIKE, SsdBackend, SsdPerfProfile
from repro.units import GiB, MiB, PAGE


@pytest.fixture
def backend(sim):
    return SsdBackend(sim, SAMSUNG_990_PRO_LIKE)


class TestWritePhases:
    def test_starts_in_fast_phase(self, backend):
        assert backend.write_phase == 0
        assert backend.current_write_gbps == \
            SAMSUNG_990_PRO_LIKE.write_phase_a_gbps

    def test_phase_toggles_by_programmed_volume(self, sim, backend):
        period = backend.profile.write_phase_period_bytes

        def program(nbytes):
            yield from backend.program_pages(nbytes // PAGE)

        sim.run_process(program(period))
        assert backend.write_phase == 1
        sim.run_process(program(period))
        assert backend.write_phase == 0

    def test_advance_skips_to_next_phase(self, backend):
        backend.advance_write_phase()
        assert backend.write_phase == 1
        backend.advance_write_phase()
        assert backend.write_phase == 0

    def test_program_rate_matches_phase(self, sim, backend):
        n = (64 * MiB) // PAGE

        def body():
            yield from backend.program_pages(n)

        sim.run_process(body())
        achieved = 64 * MiB / sim.now
        assert achieved == pytest.approx(
            SAMSUNG_990_PRO_LIKE.write_phase_a_gbps, rel=0.01)


class TestReadPaths:
    def test_stream_rate(self, sim, backend):
        def body():
            yield from backend.read_stream(64 * MiB)

        sim.run_process(body())
        assert 64 * MiB / sim.now == pytest.approx(
            SAMSUNG_990_PRO_LIKE.seq_read_gbps, rel=0.01)

    def test_channel_striping(self, backend):
        ch = backend.profile.n_channels
        assert backend.channel_of(0) == 0
        assert backend.channel_of(ch) == 0
        assert backend.channel_of(ch + 1) == 1

    def test_random_service_mean_preserved(self, sim, backend):
        """The two-point distribution keeps the configured mean."""
        n = 600
        times = []
        rng_pages = range(0, n * backend.profile.n_channels,
                          backend.profile.n_channels + 1)  # never striped-seq

        def reader(page):
            t0 = sim.now
            yield from backend.read_page_random(page)
            times.append(sim.now - t0)

        def body():
            for page in list(rng_pages)[:n]:
                yield from reader(page)

        sim.run_process(body())
        mean = sum(times) / len(times)
        assert mean == pytest.approx(backend.profile.page_read_rand_ns,
                                     rel=0.15)

    def test_striped_continuation_is_fast(self, sim, backend):
        """Sequential stripe hits are served at the streaming rate."""
        ch = backend.profile.n_channels

        def body():
            yield from backend.read_page_random(0)
            t0 = sim.now
            yield from backend.read_page_random(ch)  # continuation on ch 0
            return sim.now - t0

        dt = sim.run_process(body())
        from repro.units import ns_for_bytes
        assert dt == ns_for_bytes(PAGE * ch,
                                  backend.profile.seq_read_gbps)


class TestValidation:
    def test_bad_profiles_rejected(self):
        with pytest.raises(ConfigError):
            SsdPerfProfile(n_channels=0).validate()
        with pytest.raises(ConfigError):
            SsdPerfProfile(seq_read_gbps=0).validate()
        with pytest.raises(ConfigError):
            SsdPerfProfile(mdts_bytes=1000).validate()
        with pytest.raises(ConfigError):
            SsdPerfProfile(rand_read_slow_frac=0.5,
                           rand_read_slow_mult=3.0).validate()

    def test_zero_page_ops_rejected(self, sim, backend):
        with pytest.raises(ConfigError):
            sim.run_process(backend.program_pages(0))
        with pytest.raises(ConfigError):
            sim.run_process(backend.read_stream(0))
