"""PRP list construction / parsing, including chained lists."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidCommandError
from repro.mem import Memory
from repro.nvme import (build_prp_list, pages_for_transfer,
                        parse_prp_list_page, prp_list_pages_needed)
from repro.nvme.spec import PAGE_SIZE, PRPS_PER_LIST_PAGE
from repro.units import KiB, MiB


class TestPagesForTransfer:
    def test_basic(self):
        assert pages_for_transfer(1) == 1
        assert pages_for_transfer(4096) == 1
        assert pages_for_transfer(4097) == 2
        assert pages_for_transfer(1 * MiB) == 256

    def test_zero_rejected(self):
        with pytest.raises(InvalidCommandError):
            pages_for_transfer(0)


class TestListPagesNeeded:
    def test_small(self):
        assert prp_list_pages_needed(1) == 0
        assert prp_list_pages_needed(2) == 0
        assert prp_list_pages_needed(3) == 1
        assert prp_list_pages_needed(513) == 1  # 512 entries fit one page

    def test_chained(self):
        # 514 data pages -> 513 entries -> 511 + chain + 2 = two pages
        assert prp_list_pages_needed(514) == 2
        assert prp_list_pages_needed(1 + 511 + 512) == 2
        assert prp_list_pages_needed(1 + 511 + 512 + 1) == 3


class _ListBuilder:
    """In-memory list environment shared by construction tests."""

    def __init__(self, n_pages=16):
        self.mem = Memory(n_pages * PAGE_SIZE)
        self.next_page = 0

    def alloc(self):
        addr = self.next_page * PAGE_SIZE
        self.next_page += 1
        return addr + 0x100000  # offset so data/list spaces differ

    def write(self, addr, raw):
        self.mem.write(addr - 0x100000, raw)

    def read_page(self, addr, nbytes):
        return bytes(self.mem.read(addr - 0x100000, nbytes))


class TestBuildPrpList:
    def page_addrs(self, n, base=0x40000000):
        return [base + i * PAGE_SIZE for i in range(n)]

    def test_single_page(self):
        env = _ListBuilder()
        prp1, prp2 = build_prp_list(self.page_addrs(1), env.alloc, env.write)
        assert prp1 == 0x40000000 and prp2 == 0
        assert env.next_page == 0  # no list page allocated

    def test_two_pages_direct(self):
        env = _ListBuilder()
        prp1, prp2 = build_prp_list(self.page_addrs(2), env.alloc, env.write)
        assert prp2 == 0x40000000 + PAGE_SIZE
        assert env.next_page == 0

    def test_list_for_256_pages(self):
        env = _ListBuilder()
        pages = self.page_addrs(256)  # the paper's 1 MiB command
        prp1, prp2 = build_prp_list(pages, env.alloc, env.write)
        assert prp1 == pages[0]
        entries = parse_prp_list_page(env.read_page(prp2, 255 * 8))
        assert entries == pages[1:]

    def test_chained_list(self):
        env = _ListBuilder()
        pages = self.page_addrs(600)
        prp1, prp2 = build_prp_list(pages, env.alloc, env.write)
        # first list page: 511 entries + chain
        first = parse_prp_list_page(env.read_page(prp2, 512 * 8))
        assert first[:511] == pages[1:512]
        chain = first[511]
        rest = parse_prp_list_page(env.read_page(chain, (600 - 512) * 8))
        assert rest == pages[512:]

    def test_unaligned_rejected(self):
        env = _ListBuilder()
        with pytest.raises(InvalidCommandError):
            build_prp_list([0x1001], env.alloc, env.write)

    def test_empty_rejected(self):
        env = _ListBuilder()
        with pytest.raises(InvalidCommandError):
            build_prp_list([], env.alloc, env.write)

    @given(st.integers(min_value=1, max_value=1300))
    @settings(max_examples=30, deadline=None)
    def test_property_walk_recovers_all_pages(self, n_pages):
        """Walking any built list recovers exactly the original pages."""
        env = _ListBuilder(n_pages=8)
        pages = self.page_addrs(n_pages)
        prp1, prp2 = build_prp_list(pages, env.alloc, env.write)
        walked = [prp1]
        if n_pages == 2:
            walked.append(prp2)
        elif n_pages > 2:
            remaining = n_pages - 1
            addr = prp2
            while remaining:
                if remaining > PRPS_PER_LIST_PAGE:
                    entries = parse_prp_list_page(
                        env.read_page(addr, PRPS_PER_LIST_PAGE * 8))
                    walked.extend(entries[:-1])
                    addr = entries[-1]
                    remaining -= PRPS_PER_LIST_PAGE - 1
                else:
                    walked.extend(parse_prp_list_page(
                        env.read_page(addr, remaining * 8)))
                    remaining = 0
        assert walked == pages
        assert env.next_page == prp_list_pages_needed(n_pages)


class TestParse:
    def test_misaligned_rejected(self):
        with pytest.raises(InvalidCommandError):
            parse_prp_list_page(b"\x00" * 7)
