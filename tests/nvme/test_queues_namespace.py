"""Queue ring geometry/pointer logic and namespace bounds."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError, NamespaceError, QueueFullError
from repro.nvme import (CompletionEntry, CompletionRing, Namespace,
                        SubmissionRing, doorbell_offset)
from repro.units import MiB


class TestDoorbellOffsets:
    def test_layout(self):
        assert doorbell_offset(0, is_cq=False) == 0x1000
        assert doorbell_offset(0, is_cq=True) == 0x1004
        assert doorbell_offset(1, is_cq=False) == 0x1008
        assert doorbell_offset(1, is_cq=True) == 0x100C

    def test_negative_qid(self):
        with pytest.raises(ConfigError):
            doorbell_offset(-1, False)


class TestSubmissionRing:
    def test_claim_advances_tail(self):
        sq = SubmissionRing(0x1000, 4)
        assert sq.claim_slot() == 0
        assert sq.claim_slot() == 1
        assert sq.tail == 2

    def test_full_rejected(self):
        sq = SubmissionRing(0x1000, 4)
        for _ in range(3):  # entries-1 usable
            sq.claim_slot()
        with pytest.raises(QueueFullError):
            sq.claim_slot()

    def test_head_report_frees_slots(self):
        sq = SubmissionRing(0x1000, 4)
        for _ in range(3):
            sq.claim_slot()
        sq.note_head(2)
        assert sq.free_slots(sq.head, sq.tail) == 2
        sq.claim_slot()

    def test_entry_addr(self):
        sq = SubmissionRing(0x1000, 8)
        assert sq.entry_addr(0) == 0x1000
        assert sq.entry_addr(3) == 0x1000 + 3 * 64
        with pytest.raises(ConfigError):
            sq.entry_addr(8)

    @given(st.integers(2, 64), st.integers(0, 500))
    @settings(max_examples=50, deadline=None)
    def test_property_occupancy_bounded(self, entries, ops):
        sq = SubmissionRing(0, entries)
        claimed = 0
        for i in range(ops):
            if claimed < entries - 1:
                sq.claim_slot()
                claimed += 1
            else:
                sq.note_head(sq.tail)  # consumer caught up
                claimed = 0
            assert 0 <= sq.occupancy(sq.head, sq.tail) <= entries - 1


class TestCompletionRing:
    def test_phase_acceptance(self):
        cq = CompletionRing(0x2000, 4)
        good = CompletionEntry(cid=1, phase=1).pack()
        stale = CompletionEntry(cid=2, phase=0).pack()
        assert cq.try_accept(stale) is None
        got = cq.try_accept(good)
        assert got is not None and got.cid == 1
        assert cq.head == 1

    def test_phase_flips_on_wrap(self):
        cq = CompletionRing(0x2000, 2)
        assert cq.try_accept(CompletionEntry(cid=1, phase=1).pack()) is not None
        assert cq.try_accept(CompletionEntry(cid=2, phase=1).pack()) is not None
        assert cq.expected_phase == 0  # wrapped
        assert cq.try_accept(CompletionEntry(cid=3, phase=1).pack()) is None
        assert cq.try_accept(CompletionEntry(cid=3, phase=0).pack()) is not None


class TestNamespace:
    def test_geometry(self):
        ns = Namespace(1 * MiB)
        assert ns.nlb_total == 2048
        assert ns.lba_bytes == 512

    def test_rw_roundtrip(self, rng):
        ns = Namespace(1 * MiB)
        data = rng.integers(0, 256, 4096, dtype=np.uint8)
        ns.write_blocks(16, data)
        assert np.array_equal(ns.read_blocks(16, 8), data)

    def test_unwritten_reads_zero(self):
        ns = Namespace(1 * MiB)
        assert ns.read_blocks(100, 4).sum() == 0

    def test_oob_rejected(self):
        ns = Namespace(1 * MiB)
        with pytest.raises(NamespaceError):
            ns.read_blocks(2047, 2)
        with pytest.raises(NamespaceError):
            ns.write_blocks(2048, bytes(512))
        with pytest.raises(NamespaceError):
            ns.read_blocks(0, 0)

    def test_unaligned_write_rejected(self):
        ns = Namespace(1 * MiB)
        with pytest.raises(NamespaceError):
            ns.write_blocks(0, bytes(100))

    def test_bad_capacity(self):
        with pytest.raises(NamespaceError):
            Namespace(1000)  # not LBA multiple
