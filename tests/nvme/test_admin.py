"""Admin command set: identify, queue lifecycle, error statuses."""

import pytest

from repro.errors import NVMeError
from repro.nvme import AdminOpcode, SubmissionEntry, StatusCode
from repro.systems import HostSystemConfig, build_host_system


@pytest.fixture
def admin(sim):
    system = build_host_system(sim, HostSystemConfig())
    driver = system.spdk_driver()
    sim.run_process(driver.initialize())
    return sim, system, driver.admin


class TestIdentify:
    def test_identify_controller_fields(self, admin):
        sim, system, client = admin

        def body():
            data = yield from client.identify(cns=1)
            return bytes(data)

        data = sim.run_process(body())
        assert b"990 PRO" in data
        # MDTS encoded as log2 pages at offset 77
        mdts_pages = 1 << data[77]
        assert mdts_pages * 4096 == system.ssd.config.profile.mdts_bytes

    def test_identify_namespace_capacity(self, admin):
        sim, system, client = admin

        def body():
            data = yield from client.identify(cns=0)
            return bytes(data)

        data = sim.run_process(body())
        nlb = int.from_bytes(data[0:8], "little")
        assert nlb == system.ssd.namespace.nlb_total


class TestQueueLifecycle:
    def test_create_and_delete_extra_queue_pair(self, admin):
        sim, system, client = admin
        base = system.allocator.allocate(64 * 1024).chunks[0].base

        def body():
            yield from client.create_io_cq(5, base, 64)
            yield from client.create_io_sq(5, base + 16384, 64, cqid=5)
            assert 5 in system.ssd.controller.io_queue_ids
            yield from client.delete_io_sq(5)
            yield from client.delete_io_cq(5)

        sim.run_process(body())
        assert 5 not in system.ssd.controller.io_queue_ids

    def test_duplicate_qid_rejected(self, admin):
        sim, system, client = admin
        base = system.allocator.allocate(16 * 1024).chunks[0].base

        def body():
            yield from client.create_io_cq(1, base, 64)  # qid 1 exists

        with pytest.raises(NVMeError):
            sim.run_process(body())

    def test_sq_without_cq_rejected(self, admin):
        sim, system, client = admin
        base = system.allocator.allocate(16 * 1024).chunks[0].base

        def body():
            yield from client.create_io_sq(9, base, 64, cqid=9)

        with pytest.raises(NVMeError):
            sim.run_process(body())

    def test_delete_unknown_queue_fails(self, admin):
        sim, _system, client = admin

        def body():
            cqe = yield from client.delete_io_sq(42)
            return cqe

        cqe = sim.run_process(body())
        assert cqe.status == StatusCode.INVALID_QUEUE_ID

    def test_unknown_admin_opcode(self, admin):
        sim, _system, client = admin
        sqe = SubmissionEntry(opcode=0x7F, cid=client.next_cid())

        def body():
            cqe = yield from client.submit(sqe)
            return cqe

        cqe = sim.run_process(body())
        assert cqe.status == StatusCode.INVALID_OPCODE

    def test_set_features_succeeds(self, admin):
        sim, _system, client = admin
        sqe = SubmissionEntry(opcode=AdminOpcode.SET_FEATURES,
                              cid=client.next_cid(), cdw10=0x07)

        def body():
            return (yield from client.submit(sqe))

        assert sim.run_process(body()).ok
