"""Controller error paths and guard rails."""

import pytest

from repro.errors import NVMeError
from repro.nvme import IoOpcode
from repro.systems import HostSystemConfig, build_host_system
from repro.units import MiB


@pytest.fixture
def driver(sim):
    system = build_host_system(sim, HostSystemConfig(functional=False))
    drv = system.spdk_driver()
    sim.run_process(drv.initialize())
    return drv


class TestCommandValidation:
    def test_oversized_transfer_fails_with_status(self, sim, driver):
        mdts = driver.device.config.profile.mdts_bytes
        buf = driver.alloc_buffer(mdts + 1 * MiB)

        def body():
            yield from driver.io_and_wait(IoOpcode.READ, 0, mdts + 1 * MiB,
                                          buf)

        with pytest.raises(NVMeError):
            sim.run_process(body())
        assert driver.device.controller.stats.errors == 1

    def test_failed_io_raises_with_status(self, sim, driver):
        """A non-OK CQE fails the waiting handle with the NVMe status."""
        ns = driver.device.namespace
        buf = driver.alloc_buffer(4096)

        def body():
            yield from driver.read(ns.nlb_total, 4096, buf)

        with pytest.raises(NVMeError, match="status 0x80"):
            sim.run_process(body())

    def test_invalid_opcode_completes_with_error(self, sim, driver):
        buf = driver.alloc_buffer(4096)

        def body():
            handle = yield from driver.submit(0x55, 0, 4096, buf)
            yield handle.done

        with pytest.raises(NVMeError):
            sim.run_process(body())

    def test_enable_without_admin_queues_rejected(self, sim):
        system = build_host_system(sim, HostSystemConfig(functional=False))
        with pytest.raises(NVMeError):
            system.ssd.controller.enable()

    def test_doorbell_out_of_range_rejected(self, sim, driver):
        from repro.nvme.queues import doorbell_offset
        fabric = driver.fabric
        addr = driver.device.config.bar_base + doorbell_offset(1, False)

        def body():
            yield from fabric.host_mmio_write(
                addr, data=(9999).to_bytes(4, "little"))

        with pytest.raises(Exception):
            sim.run_process(body())

    def test_config_region_write_rejected(self, sim, driver):
        fabric = driver.fabric

        def body():
            yield from fabric.host_mmio_write(
                driver.device.config.bar_base + 0x14, data=b"\x01\x00\x00\x00")

        with pytest.raises(NVMeError):
            sim.run_process(body())


class TestBackendCounters:
    def test_programmed_bytes_track_writes(self, sim, driver):
        buf = driver.alloc_buffer(1 * MiB)

        def body():
            yield from driver.write(0, 1 * MiB, buf)

        sim.run_process(body())
        assert driver.device.backend.programmed_bytes == 1 * MiB

    def test_write_phase_toggles_on_advance(self, sim, driver):
        backend = driver.device.backend
        assert backend.write_phase == 0
        a = backend.current_write_gbps
        backend.advance_write_phase()
        assert backend.write_phase == 1
        assert backend.current_write_gbps < a
