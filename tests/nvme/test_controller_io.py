"""End-to-end NVMe IO through the real queue/doorbell/PRP machinery.

Uses the SPDK driver as the host-side exerciser — these are integration
tests of controller + ssd backend + fabric + driver together.
"""

import numpy as np
import pytest

from repro.errors import NVMeError
from repro.nvme import IoOpcode
from repro.nvme.spec import PAGE_SIZE
from repro.spdk import SpdkPerf
from repro.systems import HostSystemConfig, build_host_system
from repro.units import KiB, MiB, US


@pytest.fixture
def system(sim):
    return build_host_system(sim, HostSystemConfig())


@pytest.fixture
def driver(sim, system):
    drv = system.spdk_driver()
    sim.run_process(drv.initialize())
    return drv


class TestInit:
    def test_identify_returns_model(self, driver):
        assert b"990 PRO" in bytes(driver.identify_data)

    def test_io_queue_created(self, system, driver):
        assert system.ssd.controller.io_queue_ids == [1]

    def test_double_init_rejected(self, sim, system, driver):
        with pytest.raises(NVMeError):
            sim.run_process(driver.admin.initialize())


class TestDataPath:
    def test_write_read_4k(self, sim, system, driver, rng):
        data = rng.integers(0, 256, 4096, dtype=np.uint8)
        buf = driver.alloc_buffer(4096)
        host = system.host_mem
        off = buf.chunks[0].base - 0x10_0000_0000
        host.write(off, data)

        def body():
            yield from driver.write(slba=64, nbytes=4096, buffer=buf)
            host.fill(off, 4096, 0)
            yield from driver.read(slba=64, nbytes=4096, buffer=buf)

        sim.run_process(body())
        assert np.array_equal(host.read(off, 4096), data)
        # and the namespace holds it at the right LBA
        assert np.array_equal(system.ssd.namespace.read_blocks(64, 8), data)

    def test_write_read_1mib_uses_prp_list(self, sim, system, driver, rng):
        data = rng.integers(0, 256, 1 * MiB, dtype=np.uint8)
        buf = driver.alloc_buffer(1 * MiB)
        host = system.host_mem
        off = buf.chunks[0].base - 0x10_0000_0000
        host.write(off, data)

        def body():
            yield from driver.write(slba=0, nbytes=1 * MiB, buffer=buf)
            host.fill(off, 1 * MiB, 0)
            yield from driver.read(slba=0, nbytes=1 * MiB, buffer=buf)

        sim.run_process(body())
        assert np.array_equal(host.read(off, 1 * MiB), data)
        assert system.ssd.controller.stats.prp_list_reads >= 2  # write + read

    def test_unwritten_lba_reads_zero(self, sim, system, driver):
        buf = driver.alloc_buffer(4096)
        host = system.host_mem
        off = buf.chunks[0].base - 0x10_0000_0000
        host.fill(off, 4096, 0xFF)

        def body():
            yield from driver.read(slba=4096, nbytes=4096, buffer=buf)

        sim.run_process(body())
        assert host.read(off, 4096).sum() == 0

    def test_lba_out_of_range_fails_command(self, sim, system, driver):
        buf = driver.alloc_buffer(4096)
        nlb_total = system.ssd.namespace.nlb_total

        def body():
            yield from driver.read(slba=nlb_total, nbytes=4096, buffer=buf)

        with pytest.raises(NVMeError):
            sim.run_process(body())
        assert system.ssd.controller.stats.errors == 1

    def test_many_outstanding_commands(self, sim, system, driver, rng):
        """32 concurrent 16 KiB writes then reads, all verified."""
        n = 32
        size = 16 * KiB
        bufs = [driver.alloc_buffer(size) for _ in range(n)]
        host = system.host_mem
        blobs = [rng.integers(0, 256, size, dtype=np.uint8) for _ in range(n)]
        for buf, blob in zip(bufs, blobs):
            host.write(buf.chunks[0].base - 0x10_0000_0000, blob)

        def writer(i):
            yield from driver.write(slba=i * 64, nbytes=size, buffer=bufs[i])

        def body():
            jobs = [sim.process(writer(i)) for i in range(n)]
            yield sim.all_of(jobs)

        sim.run_process(body())
        for i, blob in enumerate(blobs):
            assert np.array_equal(
                system.ssd.namespace.read_blocks(i * 64, size // 512), blob)

    def test_flush(self, sim, system, driver):
        buf = driver.alloc_buffer(4096)

        def body():
            handle = yield from driver.submit(IoOpcode.FLUSH, 0,
                                              512, buf)
            yield handle.done

        sim.run_process(body())
        assert system.ssd.controller.stats.flushes_completed == 1


class TestTiming:
    def test_read_latency_in_expected_band(self, sim, system, driver):
        """QD1 4 KiB random read: device ~27.5 us + SPDK path => ~57 us."""
        perf = SpdkPerf(driver)
        lats = sim.run_process(perf.latency_probe(IoOpcode.READ, samples=5))
        mean_us = sum(lats) / len(lats) / 1000
        assert 45 <= mean_us <= 70

    def test_write_latency_under_9us(self, sim, system, driver):
        perf = SpdkPerf(driver)
        lats = sim.run_process(perf.latency_probe(IoOpcode.WRITE, samples=5))
        mean_us = sum(lats) / len(lats) / 1000
        assert mean_us < 9

    def test_cpu_spins_at_full_load(self, sim, system, driver):
        """SPDK burns its CPU thread (paper §6.3)."""
        system.cpu.reset_accounting()
        perf = SpdkPerf(driver)
        sim.run_process(perf.seq_write(8 * MiB))
        assert system.cpu.utilization() > 0.99


class TestFetchSpanCoalescing:
    """``fetch_span_pages > 1``: the ablation knob that fetches contiguous
    PRP spans as one DMA read each instead of the paper-faithful per-page
    MRRS-bounded fetch (the P2P write-bandwidth limiter, DESIGN.md §5)."""

    NBYTES = 64 * KiB

    def _run_write(self, span_pages, rng):
        from dataclasses import replace

        from repro.sim import Simulator

        sim = Simulator()
        cfg = HostSystemConfig()
        cfg = cfg.with_profile(replace(cfg.ssd.profile,
                                       fetch_span_pages=span_pages))
        system = build_host_system(sim, cfg)
        drv = system.spdk_driver()
        sim.run_process(drv.initialize())
        data = rng.integers(0, 256, self.NBYTES, dtype=np.uint8)
        buf = drv.alloc_buffer(self.NBYTES)
        off = buf.chunks[0].base - 0x10_0000_0000
        system.host_mem.write(off, data)
        t0 = sim.now
        sim.run_process(drv.write(slba=0, nbytes=self.NBYTES, buffer=buf))
        elapsed = sim.now - t0
        return elapsed, data, system

    def test_span_fetch_preserves_data(self, rng):
        _, data, system = self._run_write(8, rng)
        lba_bytes = system.ssd.namespace.lba_bytes
        stored = system.ssd.namespace.read_blocks(0, self.NBYTES // lba_bytes)
        assert np.array_equal(stored, data)

    def test_span_fetch_coalesces_contiguous_prp_runs(self):
        from repro.nvme.controller import NvmeController
        from repro.units import PAGE

        pages = [0x8000 + i * PAGE for i in range(16)]
        per_page = NvmeController._coalesce(pages, 16 * PAGE, 1)
        spanned = NvmeController._coalesce(pages, 16 * PAGE, 8)
        assert per_page == [(0x8000 + i * PAGE, PAGE) for i in range(16)]
        assert spanned == [(0x8000, 8 * PAGE), (0x8000 + 8 * PAGE, 8 * PAGE)]

    def test_span_fetch_breaks_runs_at_discontiguities_and_tail(self):
        from repro.nvme.controller import NvmeController
        from repro.units import PAGE

        # 0x0, 0x1000 contiguous; 0x9000 breaks the run; tail is 1 KiB.
        pages = [0x0, PAGE, 0x9000]
        runs = NvmeController._coalesce(pages, 2 * PAGE + 1024, 8)
        assert runs == [(0x0, 2 * PAGE), (0x9000, 1024)]

    def test_span_fetch_changes_fetch_schedule_but_not_payload(self, rng):
        # The knob trades per-transaction overhead against fetch/program
        # overlap, so elapsed time must *differ*; the stored bytes must not.
        per_page, data1, sys1 = self._run_write(1, rng)
        spanned, data2, sys2 = self._run_write(8, rng)
        assert spanned != per_page
        lba = sys1.ssd.namespace.lba_bytes
        stored1 = sys1.ssd.namespace.read_blocks(0, self.NBYTES // lba)
        stored2 = sys2.ssd.namespace.read_blocks(0, self.NBYTES // lba)
        assert np.array_equal(stored1, data1)
        assert np.array_equal(stored2, data2)

    def test_default_profile_is_per_page(self):
        assert HostSystemConfig().ssd.profile.fetch_span_pages == 1

    def test_out_of_range_span_rejected(self):
        from dataclasses import replace

        from repro.errors import ConfigError

        profile = HostSystemConfig().ssd.profile
        with pytest.raises(ConfigError):
            replace(profile, fetch_span_pages=0).validate()
        with pytest.raises(ConfigError):
            replace(profile, fetch_span_pages=65).validate()
