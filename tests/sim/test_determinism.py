"""Cross-run determinism guard.

Two runs of the same seeded model must produce the *same event sequence*,
not merely the same summary numbers — every figure in the bench suite
rests on that property, and the kernel fast paths (DESIGN.md §5) must not
erode it.  This builds the full SNAcc system twice, traces every processed
event through ``sim.trace_hook``, and requires the traces and the measured
bandwidths to match exactly.
"""

from repro.core import StreamerVariant, build_snacc_system
from repro.core.bench import SnaccPerf
from repro.sim import Simulator
from repro.systems import HostSystemConfig
from repro.units import MiB


def _traced_run():
    """Build, initialize, and run a small workload; returns (trace, gbps)."""
    sim = Simulator()
    trace = []
    system = build_snacc_system(sim, StreamerVariant.URAM,
                                HostSystemConfig(functional=False))
    sim.trace_hook = lambda when, event: trace.append(
        (when, type(event).__name__))
    system.initialize()
    perf = SnaccPerf(sim, system.user)
    seq = sim.run_process(perf.seq_read(4 * MiB))
    rand = sim.run_process(perf.rand_read(2 * MiB))
    return trace, seq.gbps, rand.gbps


def test_two_seeded_runs_interleave_identically():
    trace_a, seq_a, rand_a = _traced_run()
    trace_b, seq_b, rand_b = _traced_run()
    assert seq_a == seq_b
    assert rand_a == rand_b
    assert len(trace_a) == len(trace_b)
    # compare pointwise to localize any divergence instead of one giant diff
    for i, (ea, eb) in enumerate(zip(trace_a, trace_b)):
        assert ea == eb, (
            f"trace diverged at event {i}: run A {ea} vs run B {eb}")


def test_trace_covers_the_whole_run():
    trace, _seq, _rand = _traced_run()
    # a full system bring-up plus two workloads is tens of thousands of
    # events; an empty or tiny trace means the hook was bypassed
    assert len(trace) > 10_000
    times = [t for t, _name in trace]
    assert times == sorted(times), "trace timestamps must be monotonic"
