"""Kernel primitives behind the frame-train fast path.

:class:`TrainSchedule` (one live event per K evenly spaced ticks),
``schedule_call`` (pooled one-shot deferred calls), ``try_acquire``
(the synchronous zero-event grant), and the contention-callback hook —
the four pieces DESIGN.md §11 composes into O(1)-event transfers.
"""

import pytest

from repro.sim import Simulator
from repro.sim.core import _CALL_POOL, drain_freelists
from repro.sim.resources import Resource


class TestTrainSchedule:
    def test_exact_tick_times(self, sim):
        ticks = []
        sim.schedule_train(4, 100, 30, lambda i: ticks.append((sim.now, i)))
        sim.run()
        assert ticks == [(100, 0), (130, 1), (160, 2), (190, 3)]

    def test_truncate_pending_tail(self, sim):
        ticks = []
        handle = sim.schedule_train(10, 50, 50,
                                    lambda i: ticks.append(sim.now))

        def splitter():
            yield sim.timeout(160)  # 3 ticks fired (50, 100, 150)
            handle.truncate(5)

        _ = sim.process(splitter())
        sim.run()
        assert ticks == [50, 100, 150, 200, 250]

    def test_truncate_never_unfires(self, sim):
        ticks = []
        handle = sim.schedule_train(6, 10, 10,
                                    lambda i: ticks.append(sim.now))

        def splitter():
            yield sim.timeout(35)  # 3 ticks fired
            handle.truncate(1)     # below index: clamps to fired count

        _ = sim.process(splitter())
        sim.run()
        assert ticks == [10, 20, 30]
        assert handle.count == 3

    def test_truncate_at_fired_count_is_noop_boundary(self, sim):
        # truncating exactly at the fired count stops the pending tick:
        # the m == k boundary of a train split
        ticks = []
        handle = sim.schedule_train(5, 10, 10,
                                    lambda i: ticks.append(sim.now))

        def splitter():
            yield sim.timeout(20)
            handle.truncate(2)

        _ = sim.process(splitter())
        sim.run()
        assert ticks == [10, 20]

    def test_validation(self, sim):
        with pytest.raises(ValueError):
            sim.schedule_train(0, 10, 10, lambda i: None)
        with pytest.raises(ValueError):
            sim.schedule_train(3, -1, 10, lambda i: None)
        with pytest.raises(ValueError):
            sim.schedule_train(3, 10, 0, lambda i: None)
        # spacing is irrelevant for a single tick
        sim.schedule_train(1, 10, 0, lambda i: None)
        sim.run()


class TestScheduleCall:
    def test_exact_fire_time_and_arg(self, sim):
        fired = []
        sim.schedule_call(250, lambda arg: fired.append((sim.now, arg)),
                          "payload")
        sim.run()
        assert fired == [(250, "payload")]

    def test_negative_delay_rejected(self):
        drain_freelists()
        sim = Simulator()
        # empty pool: the fresh-allocation branch validates
        with pytest.raises(ValueError):
            sim.schedule_call(-1, lambda arg: None)
        sim.schedule_call(1, lambda arg: None)
        sim.run()
        assert _CALL_POOL, "expected a recycled _Call"
        # non-empty pool: the recycling branch validates too
        with pytest.raises(ValueError):
            sim.schedule_call(-5, lambda arg: None)
        drain_freelists()

    def test_pool_recycling(self):
        drain_freelists()
        sim = Simulator()
        sim.schedule_call(10, lambda arg: None)
        sim.run()
        assert len(_CALL_POOL) == 1
        recycled = _CALL_POOL[-1]
        fired = []
        sim2 = Simulator()
        ev = sim2.schedule_call(5, lambda arg: fired.append(arg), 42)
        assert ev is recycled, "pooled _Call was not reused"
        sim2.run()
        assert fired == [42]


class TestTryAcquire:
    def test_sync_grant_and_exhaustion(self, sim):
        res = Resource(sim, capacity=2)
        assert res.try_acquire() is True
        assert res.try_acquire() is True
        assert res.try_acquire() is False
        assert res.in_use == 2
        res.release()
        assert res.try_acquire() is True

    def test_release_wakes_queued_waiter(self, sim):
        res = Resource(sim, capacity=1)
        granted = []

        def holder():
            assert res.try_acquire()
            yield sim.timeout(100)
            res.release()

        def waiter():
            yield sim.timeout(1)
            yield res.acquire()
            granted.append(sim.now)
            res.release()

        _ = sim.process(holder())
        _ = sim.process(waiter())
        sim.run()
        assert granted == [100]


class TestWatchContentionFn:
    def test_fires_synchronously_on_queueing_acquire(self, sim):
        res = Resource(sim, capacity=1)
        hits = []
        assert res.try_acquire()
        res.watch_contention_fn(lambda: hits.append(sim.now))

        def contender():
            yield sim.timeout(40)
            yield res.acquire()
            res.release()

        _ = sim.process(contender())
        sim.run()
        # invoked at the contention instant, exactly once
        assert hits == [40]
        assert res._contention_fn is None

    def test_free_capacity_grant_does_not_fire(self, sim):
        res = Resource(sim, capacity=2)
        hits = []
        assert res.try_acquire()
        res.watch_contention_fn(lambda: hits.append(sim.now))

        def taker():
            yield res.acquire()  # second slot is free: no contention
            res.release()

        _ = sim.process(taker())
        sim.run()
        assert hits == []

    def test_unwatch_clears_only_own_fn(self, sim):
        res = Resource(sim, capacity=1)
        fn_a = lambda: None  # noqa: E731
        fn_b = lambda: None  # noqa: E731
        res.watch_contention_fn(fn_a)
        res.unwatch_contention_fn(fn_b)  # not the registrant: no-op
        assert res._contention_fn is fn_a
        res.watch_contention_fn(fn_b)    # replacement
        res.unwatch_contention_fn(fn_b)
        assert res._contention_fn is None
