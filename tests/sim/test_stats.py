"""Bandwidth meters, latency collectors, summaries."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim import BandwidthMeter, LatencyCollector, summarize
from repro.units import SEC


class TestBandwidthMeter:
    def test_simple_rate(self):
        m = BandwidthMeter()
        m.mark_start(0)
        m.record(SEC, 10**9)  # 1 GB in 1 s
        assert m.gbps() == pytest.approx(1.0)

    def test_span_defaults_to_first_record(self):
        m = BandwidthMeter()
        m.record(100, 50)
        m.record(200, 50)
        # span is 100 ns for 100 bytes => 1 GB/s
        assert m.gbps() == pytest.approx(1.0)

    def test_empty_meter_zero(self):
        assert BandwidthMeter().gbps() == 0.0

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            BandwidthMeter().record(0, -1)

    def test_interval_gbps_exposes_alternation(self):
        m = BandwidthMeter()
        m.keep_window = True
        m.mark_start(0)
        # Two phases: fast (2 B/ns) then slow (1 B/ns), 1000-ns buckets.
        t = 0
        for _ in range(10):
            t += 100
            m.record(t, 200)
        for _ in range(10):
            t += 100
            m.record(t, 100)
        rates = m.interval_gbps(1000)
        # Bucket boundaries straddle records, so allow slack around the
        # per-phase rates; the alternation itself must be visible.
        assert rates[0] >= 1.7
        assert rates[-1] <= 1.3
        assert rates[0] > rates[-1]

    def test_interval_requires_window(self):
        m = BandwidthMeter()
        m.record(1, 1)
        with pytest.raises(ValueError):
            m.interval_gbps(10)


class TestLatencyCollector:
    def test_mean_us(self):
        c = LatencyCollector()
        c.record(1000)
        c.record(3000)
        assert c.mean_us() == pytest.approx(2.0)

    def test_empty_mean_rejected(self):
        with pytest.raises(ValueError):
            LatencyCollector().mean_us()

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            LatencyCollector().record(-1)

    def test_summary(self):
        c = LatencyCollector()
        for v in [10, 20, 30, 40]:
            c.record(v)
        s = c.summary()
        assert s.count == 4
        assert s.mean == pytest.approx(25)
        assert s.minimum == 10
        assert s.maximum == 40


class TestSummarize:
    def test_single_sample(self):
        s = summarize([5.0])
        assert s.p50 == 5.0 and s.p99 == 5.0 and s.stdev == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    @given(st.lists(st.floats(min_value=0, max_value=1e9,
                              allow_nan=False), min_size=1, max_size=200))
    def test_invariants(self, samples):
        s = summarize(samples)
        eps = 1e-6 * max(1.0, abs(s.maximum))  # float-summation slack
        assert s.minimum <= s.p50 <= s.maximum + eps
        assert s.minimum - eps <= s.mean <= s.maximum + eps
        assert s.p50 <= s.p99 <= s.maximum + eps
        assert s.count == len(samples)
