"""Regression tests for Simulator.run(until=) clock semantics.

The original tail advanced the clock to ``until`` only on the drained-heap
path and could *rewind* it on the break path when ``until`` lay in the
past; both exits now share one policy: ``now = max(now, until)``.
Also covers the integer-only delay contract enforced at the kernel edge.
"""

import pytest

from repro.sim.core import Simulator

np = pytest.importorskip("numpy")


def ticker(sim, period, log):
    while True:
        yield sim.timeout(period)
        log.append(sim.now)


def one_shot(sim, delay, log):
    yield sim.timeout(delay)
    log.append(sim.now)


class TestRunUntilClock:
    def test_drained_heap_advances_to_until(self):
        sim = Simulator()
        log = []
        _ = sim.process(one_shot(sim, 10, log))
        sim.run(until=100)
        assert log == [10]
        assert sim.now == 100

    def test_break_path_advances_to_until(self):
        # A pending event beyond `until` must not block the clock advance.
        sim = Simulator()
        log = []
        _ = sim.process(one_shot(sim, 500, log))
        sim.run(until=100)
        assert log == []
        assert sim.now == 100
        # The future event is still pending and fires on the next run().
        sim.run()
        assert log == [500]
        assert sim.now == 500

    def test_until_in_past_never_rewinds_clock(self):
        sim = Simulator()
        log = []
        _ = sim.process(ticker(sim, 50, log))
        sim.run(until=100)
        assert sim.now == 100
        # until < now with a future event pending: the old while/else tail
        # rewound the clock here.
        sim.run(until=30)
        assert sim.now == 100
        assert log == [50, 100]

    def test_event_exactly_at_until_is_processed(self):
        sim = Simulator()
        log = []
        _ = sim.process(one_shot(sim, 100, log))
        sim.run(until=100)
        assert log == [100]
        assert sim.now == 100

    def test_run_until_break_path_does_not_rewind(self):
        sim = Simulator()
        log = []
        _ = sim.process(ticker(sim, 50, log))
        sim.run(until=200)
        assert sim.now == 200
        ev = sim.event()
        sim.run_until(ev, until=60)
        assert sim.now == 200


class TestIntegerDelayContract:
    def test_float_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(TypeError, match="round-up policy"):
            sim.timeout(1.5)  # snacclint: disable (raising is the point)

    def test_numpy_integer_delay_accepted(self):
        sim = Simulator()
        log = []
        _ = sim.process(one_shot(sim, np.int64(7), log))
        sim.run()
        assert log == [7]
        assert sim.now == 7

    def test_ns_ceil_rounds_up(self):
        from repro.units import ns_ceil

        assert ns_ceil(0.0) == 0
        assert ns_ceil(1.0) == 1
        assert ns_ceil(1.0001) == 2
        with pytest.raises(ValueError):
            ns_ceil(-0.5)
