"""Store / Resource / TokenBucket semantics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.sim import Resource, Simulator, Store, TokenBucket


class TestStoreFifo:
    def test_items_arrive_in_order(self, sim):
        st_ = Store(sim)
        out = []

        def producer():
            for i in range(10):
                yield st_.put(i)
                yield sim.timeout(1)

        def consumer():
            for _ in range(10):
                item = yield st_.get()
                out.append(item)

        _ = sim.process(producer())
        _ = sim.process(consumer())
        sim.run()
        assert out == list(range(10))

    def test_capacity_blocks_producer(self, sim):
        st_ = Store(sim, capacity=2)
        progress = []

        def producer():
            for i in range(4):
                yield st_.put(i)
                progress.append((sim.now, i))

        def consumer():
            yield sim.timeout(100)
            for _ in range(4):
                yield st_.get()
                yield sim.timeout(10)

        _ = sim.process(producer())
        _ = sim.process(consumer())
        sim.run()
        # First two puts complete at t=0; the rest wait for the consumer.
        assert progress[0] == (0, 0)
        assert progress[1] == (0, 1)
        assert progress[2][0] >= 100
        assert progress[3][0] > progress[2][0]

    def test_get_blocks_until_put(self, sim):
        st_ = Store(sim)
        out = []

        def consumer():
            item = yield st_.get()
            out.append((sim.now, item))

        def producer():
            yield sim.timeout(42)
            yield st_.put("x")

        _ = sim.process(consumer())
        _ = sim.process(producer())
        sim.run()
        assert out == [(42, "x")]

    def test_multiple_getters_served_fifo(self, sim):
        st_ = Store(sim)
        out = []

        def consumer(name):
            item = yield st_.get()
            out.append((name, item))

        def producer():
            yield sim.timeout(1)
            for i in range(3):
                yield st_.put(i)

        for name in ("c0", "c1", "c2"):
            _ = sim.process(consumer(name))
        _ = sim.process(producer())
        sim.run()
        assert out == [("c0", 0), ("c1", 1), ("c2", 2)]

    def test_try_put_try_get(self, sim):
        st_ = Store(sim, capacity=1)
        assert st_.try_put(1) is True
        assert st_.try_put(2) is False
        ok, item = st_.try_get()
        assert ok and item == 1
        ok, _ = st_.try_get()
        assert not ok

    def test_peek(self, sim):
        st_ = Store(sim)
        st_.try_put("a")
        assert st_.peek() == "a"
        assert len(st_) == 1
        with pytest.raises(SimulationError):
            Store(sim).peek()

    def test_invalid_capacity(self, sim):
        with pytest.raises(ValueError):
            Store(sim, capacity=0)

    @given(st.lists(st.integers(), min_size=1, max_size=50),
           st.integers(min_value=1, max_value=5))
    @settings(max_examples=50, deadline=None)
    def test_property_fifo_preserved_any_capacity(self, items, cap):
        sim = Simulator()
        store = Store(sim, capacity=cap)
        out = []

        def producer():
            for it in items:
                yield store.put(it)

        def consumer():
            for _ in items:
                v = yield store.get()
                out.append(v)
                yield sim.timeout(1)

        _ = sim.process(producer())
        _ = sim.process(consumer())
        sim.run()
        assert out == items


class TestResource:
    def test_capacity_limits_concurrency(self, sim):
        res = Resource(sim, capacity=2)
        active = []
        peaks = []

        def user(i):
            yield res.acquire()
            active.append(i)
            peaks.append(len(active))
            yield sim.timeout(10)
            active.remove(i)
            res.release()

        for i in range(5):
            _ = sim.process(user(i))
        sim.run()
        assert max(peaks) == 2

    def test_fifo_grant_order(self, sim):
        res = Resource(sim, capacity=1)
        order = []

        def user(i):
            yield res.acquire()
            order.append(i)
            yield sim.timeout(1)
            res.release()

        for i in range(4):
            _ = sim.process(user(i))
        sim.run()
        assert order == [0, 1, 2, 3]

    def test_release_without_acquire_rejected(self, sim):
        res = Resource(sim)
        with pytest.raises(SimulationError):
            res.release()

    def test_counts(self, sim):
        res = Resource(sim, capacity=1)

        def holder():
            yield res.acquire()
            assert res.in_use == 1
            yield sim.timeout(10)
            res.release()

        def waiter():
            yield sim.timeout(1)
            yield res.acquire()
            res.release()

        _ = sim.process(holder())
        _ = sim.process(waiter())

        def checker():
            yield sim.timeout(5)
            assert res.in_use == 1
            assert res.queued == 1

        _ = sim.process(checker())
        sim.run()
        assert res.in_use == 0


class TestTokenBucket:
    def test_burst_passes_instantly(self, sim):
        tb = TokenBucket(sim, rate_gbps=1.0, burst=1000)
        times = []

        def body():
            yield from tb.consume(1000)
            times.append(sim.now)

        _ = sim.process(body())
        sim.run()
        assert times == [0]

    def test_sustained_rate_enforced(self, sim):
        tb = TokenBucket(sim, rate_gbps=1.0, burst=100)
        done = []

        def body():
            total = 0
            for _ in range(10):
                yield from tb.consume(1000)
                total += 1000
            done.append((sim.now, total))

        _ = sim.process(body())
        sim.run()
        t, total = done[0]
        achieved = total / t  # bytes/ns == GB/s
        # Over any window of length t, a token bucket admits at most
        # rate*t + burst bytes.
        assert achieved <= 1.0 + 100 / t + 1e-9
        assert achieved >= 0.8  # not pathologically slow either

    def test_invalid_params(self, sim):
        with pytest.raises(ValueError):
            TokenBucket(sim, rate_gbps=0, burst=1)
        with pytest.raises(ValueError):
            TokenBucket(sim, rate_gbps=1, burst=0)
