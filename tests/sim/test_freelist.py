"""Freelist reuse-safety tests.

The kernel recycles dead leaf ``Timeout``/``Event`` objects through
module-level pools (DESIGN.md §5).  An object may only enter a pool when
the drain loop holds the *last* reference (``getrefcount == 2``), and a
recycled object must come back indistinguishable from a freshly
constructed one — no stale ``_waiter``, ``_callbacks``, ``_value``,
``_exc``, or ``sim`` leaking across reuses, even across different
``Simulator`` instances in the same process.
"""

from repro.sim import core
from repro.sim.core import _PENDING, Simulator
from repro.sim.resources import Store


def _drain_pools():
    core._TIMEOUT_POOL.clear()
    core._EVENT_POOL.clear()


def _spin(sim, n, value=None):
    for _ in range(n):
        yield sim.timeout(1, value=value)


def test_dead_timeouts_are_recycled():
    _drain_pools()
    sim = Simulator()
    for _ in range(8):
        _ = sim.process(_spin(sim, 5))
    sim.run()
    assert core._TIMEOUT_POOL, "no timeout was recycled"
    for t in core._TIMEOUT_POOL:
        assert t.sim is None
        assert t._value is None
        assert t._exc is None
        assert t._waiter is None
        assert t._callbacks is None
        assert t._timeout_value is None


def test_dead_store_grant_events_are_recycled():
    _drain_pools()
    sim = Simulator()
    store = Store(sim, capacity=None)

    def producer(sim, store):
        for i in range(10):
            yield store.put(i)

    def consumer(sim, store):
        for _ in range(10):
            _ = yield store.get()

    _ = sim.process(producer(sim, store))
    _ = sim.process(consumer(sim, store))
    sim.run()
    assert core._EVENT_POOL, "no grant event was recycled"
    for ev in core._EVENT_POOL:
        assert ev.sim is None
        assert ev._value is None
        assert ev._waiter is None
        assert ev._callbacks is None


def test_user_held_event_is_never_recycled():
    _drain_pools()
    sim = Simulator()
    held = sim.timeout(5, value="keep")
    _ = sim.process(_spin(sim, 3))
    sim.run()
    assert held not in core._TIMEOUT_POOL
    assert held.processed
    assert held.value == "keep"  # still readable after the run
    assert held.sim is sim


def test_callback_retained_event_is_never_recycled():
    # an event captured by user code (here: a callback stashing it)
    # has refcount > 2 at processing time and must stay out of the pool
    _drain_pools()
    sim = Simulator()
    seen = []
    t = sim.timeout(2)
    t.add_callback(seen.append)
    del t
    sim.run()
    assert len(seen) == 1
    assert seen[0] not in core._TIMEOUT_POOL


def test_no_stale_value_leaks_across_recycle():
    _drain_pools()
    sim_a = Simulator()
    _ = sim_a.process(_spin(sim_a, 4, value="SECRET"))
    sim_a.run()
    assert core._TIMEOUT_POOL  # primed with "SECRET"-carrying corpses

    sim_b = Simulator()
    got = []

    def probe(sim):
        got.append((yield sim.timeout(1)))       # default value
        got.append((yield sim.timeout(1, "x")))  # explicit value

    _ = sim_b.process(probe(sim_b))
    sim_b.run()
    assert got == [None, "x"]


def test_recycled_event_starts_pending_and_clean():
    _drain_pools()
    sim_a = Simulator()
    store = Store(sim_a, capacity=None)

    def churn(sim, store):
        for i in range(6):
            yield store.put(i)
            _ = yield store.get()

    _ = sim_a.process(churn(sim_a, store))
    sim_a.run()
    assert core._EVENT_POOL

    sim_b = Simulator()
    ev = sim_b.event()  # must come from the pool
    assert ev.sim is sim_b
    assert ev._value is _PENDING
    assert not ev.triggered
    assert not ev.processed
    assert ev._waiter is None
    assert ev._callbacks is None
    assert ev.exception is None


def test_pool_never_exceeds_cap():
    _drain_pools()
    sim = Simulator()
    n = core._POOL_CAP + 500
    for _ in range(n):
        _ = sim.process(_spin(sim, 1))
    sim.run()
    assert len(core._TIMEOUT_POOL) <= core._POOL_CAP


def test_run_until_drain_also_recycles():
    _drain_pools()
    sim = Simulator()

    def background(sim):
        while True:
            yield sim.timeout(10)

    def finisher(sim):
        yield sim.timeout(200)
        return "done"

    _ = sim.process(background(sim))
    assert sim.run_process(finisher(sim)) == "done"
    assert core._TIMEOUT_POOL, "run_until's drain should recycle too"
