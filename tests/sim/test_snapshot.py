"""Checkpoint/fork scenario engine: equivalence, guards, fork hygiene.

The load-bearing property is *mechanism independence*: a branch returns
byte-identical payloads whether it ran in a forked child, a verified
replay, or a cold rebuild (DESIGN.md §10).  Everything else here guards
the ways that property could silently break — non-deterministic
factories, live threads at the fork point, and recycled kernel objects
crossing the fork boundary.
"""

import json
import threading
import time

import pytest

from repro.bench.pool import shutdown_pool
from repro.errors import SnapshotError
from repro.sim import core
from repro.sim.core import Simulator
from repro.sim.resources import Store
from repro.sim.snapshot import (Checkpoint, ScenarioEngine, fork_available,
                                fork_scenarios)

needs_fork = pytest.mark.skipif(not fork_available(),
                                reason="os.fork not available")


@pytest.fixture(autouse=True)
def single_threaded_host():
    """Retire the warm worker pool earlier tests may have left running.

    The engine (correctly) refuses to fork while the pool's management
    threads are alive, so fork-based tests must start single-threaded —
    the same discipline ``scripts/perf.py`` applies before its sweep.
    """
    shutdown_pool(wait=True)
    for _ in range(100):
        if threading.active_count() == 1:
            break
        time.sleep(0.05)


class MiniWorld:
    """A tiny producer/consumer pipeline with churn worth checkpointing.

    The warm phase runs it to completion with the *unbounded* drain loop
    — the only loop that recycles dead events into the freelists — so a
    checkpoint taken afterwards sits on top of real recycling traffic.
    """

    def __init__(self, scheduler="calendar"):
        self.sim = Simulator(scheduler=scheduler)
        self.store = Store(self.sim, capacity=4)
        self.seen = []
        _ = self.sim.process(self._producer(200), name="producer")
        _ = self.sim.process(self._consumer(200), name="consumer")

    def _producer(self, n):
        for i in range(n):
            yield self.sim.timeout(2)
            yield self.store.put(i)

    def _consumer(self, n):
        for _ in range(n):
            item = yield self.store.get()
            self.seen.append(item)
            yield self.sim.timeout(3)


def make_world():
    return MiniWorld()


def warm_world(world):
    world.sim.run()


def burst_branch(extra_delay):
    """A branch that injects a divergent burst and reports the outcome."""

    def branch(world):
        def burst(sim, store):
            yield sim.timeout(extra_delay)
            for i in range(5):
                yield store.put(1000 + extra_delay + i)

        def drain(sim, store):
            for _ in range(5):
                item = yield store.get()
                world.seen.append(item)

        _ = world.sim.process(burst(world.sim, world.store), name="burst")
        _ = world.sim.process(drain(world.sim, world.store), name="drain")
        world.sim.run()
        return {"delay": extra_delay, "now": world.sim.now,
                "seen": list(world.seen)}

    return branch


BRANCHES = [burst_branch(d) for d in (1, 7, 13)]


def payloads_json(results):
    return json.dumps(results, sort_keys=True)


class TestQuiesce:
    @pytest.mark.parametrize("scheduler", ["calendar", "heap"])
    def test_settles_current_instant_without_advancing(self, scheduler):
        sim = Simulator(scheduler=scheduler)
        fired = []

        def now_proc(sim):
            fired.append(sim.now)
            yield sim.timeout(0)
            fired.append(sim.now)
            yield sim.timeout(5)
            fired.append(sim.now)

        _ = sim.process(now_proc(sim))
        info = sim.quiesce()
        # the zero-delay wake ran, the 5ns one did not
        assert fired == [0, 0]
        assert info.now == sim.now == 0
        assert info.events == sim._seq

    def test_drains_freelists(self):
        core._TIMEOUT_POOL.clear()
        core._EVENT_POOL.clear()
        world = MiniWorld()
        world.sim.run()
        assert core._TIMEOUT_POOL, "warmup recycled nothing; vacuous test"
        world.sim.quiesce()
        assert core._TIMEOUT_POOL == []
        assert core._EVENT_POOL == []


class TestEquivalence:
    """fork == replay == cold, byte for byte."""

    def run_mech(self, mechanism):
        engine = ScenarioEngine(make_world, warm_world)
        results = engine.run(BRANCHES, mechanism=mechanism)
        return engine, results

    def test_replay_equals_cold(self):
        _, replayed = self.run_mech("replay")
        _, cold = self.run_mech("cold")
        assert payloads_json(replayed) == payloads_json(cold)
        # branches genuinely diverge from the shared prefix
        assert len({payloads_json([r]) for r in replayed}) == len(BRANCHES)

    @needs_fork
    def test_fork_equals_cold(self):
        _, forked = self.run_mech("fork")
        _, cold = self.run_mech("cold")
        assert payloads_json(forked) == payloads_json(cold)

    @needs_fork
    def test_checkpoints_agree_across_mechanisms(self):
        checkpoints = set()
        for mechanism in ("fork", "replay", "cold"):
            engine, _ = self.run_mech(mechanism)
            assert engine.mechanism_used == mechanism
            checkpoints.add(engine.checkpoint)
        assert len(checkpoints) == 1
        ck = checkpoints.pop()
        assert isinstance(ck, Checkpoint)
        assert ck.now > 0 and ck.events > 0
        assert "events" in ck.describe()

    @needs_fork
    def test_refork_from_same_checkpoint_is_identical(self):
        engine = ScenarioEngine(make_world, warm_world)
        first = engine.run(BRANCHES, mechanism="fork")
        second = engine.run(BRANCHES, mechanism="fork")
        assert payloads_json(first) == payloads_json(second)

    def test_payload_round_trips_json_under_every_mechanism(self):
        # a tuple comes back as a list even without a fork pipe: the
        # round-trip is applied deliberately so payload types can never
        # depend on which mechanism happened to run
        def branch(world):
            return ("tuple", 1)

        engine = ScenarioEngine(make_world)
        assert engine.run([branch], mechanism="replay") == [["tuple", 1]]

    def test_bare_simulator_world(self):
        # a world that IS the simulator (no .sim attribute indirection)
        def setup():
            sim = Simulator()

            def tick(sim):
                yield sim.timeout(4)

            _ = sim.process(tick(sim), name="tick")
            return sim

        def branch(sim):
            sim.run()
            return sim.now

        assert fork_scenarios(setup, [branch], mechanism="replay") == [4]


class TestGuards:
    def test_invalid_mechanism_rejected(self):
        with pytest.raises(SnapshotError, match="mechanism"):
            ScenarioEngine(make_world, mechanism="psychic")
        engine = ScenarioEngine(make_world)
        with pytest.raises(SnapshotError, match="mechanism"):
            engine.run(BRANCHES, mechanism="psychic")

    def test_world_without_simulator_rejected(self):
        with pytest.raises(SnapshotError, match="sim_of"):
            ScenarioEngine(object).prepare()

    def test_replay_divergence_hard_fails(self):
        drift = {"n": 0}

        def leaky_setup():
            # deliberately non-deterministic: each build runs longer
            drift["n"] += 1
            world = MiniWorld()
            world.sim.run(until=20 * drift["n"])
            return world

        engine = ScenarioEngine(leaky_setup)
        engine.run([BRANCHES[0]], mechanism="replay")  # reference build
        with pytest.raises(SnapshotError, match="replay divergence"):
            engine.run([BRANCHES[0]], mechanism="replay")

    def test_cold_never_guards(self):
        drift = {"n": 0}

        def leaky_setup():
            drift["n"] += 1
            world = MiniWorld()
            world.sim.run(until=20 * drift["n"])
            return world

        engine = ScenarioEngine(leaky_setup)
        results = engine.run([BRANCHES[0], BRANCHES[0]], mechanism="cold")
        # no guard, so the drift shows up as differing payloads instead
        assert results[0] != results[1]

    def test_fork_unavailable_raises_and_auto_degrades(self, monkeypatch):
        from repro.sim import snapshot

        monkeypatch.setattr(snapshot, "fork_available", lambda: False)
        engine = ScenarioEngine(make_world, warm_world)
        with pytest.raises(SnapshotError, match="not available"):
            engine.run(BRANCHES[:1], mechanism="fork")
        engine.run(BRANCHES[:1], mechanism="auto")
        assert engine.mechanism_used == "replay"

    @needs_fork
    def test_fork_refused_while_threads_alive(self):
        engine = ScenarioEngine(make_world, warm_world)
        release = threading.Event()
        parked = threading.Thread(target=release.wait)
        parked.start()
        try:
            with pytest.raises(SnapshotError, match="live threads"):
                engine.run(BRANCHES[:1], mechanism="fork")
            engine.run(BRANCHES[:1], mechanism="auto")
            assert engine.mechanism_used == "replay"
        finally:
            release.set()
            parked.join()

    @needs_fork
    def test_failing_branch_surfaces_as_snapshot_error(self):
        def bad_branch(world):
            raise RuntimeError("boom in the child")

        engine = ScenarioEngine(make_world)
        with pytest.raises(SnapshotError, match="branch 0"):
            engine.run([bad_branch], mechanism="fork")


@needs_fork
class TestForkHygiene:
    def test_no_recycled_kernel_object_crosses_the_fork_boundary(self):
        core._TIMEOUT_POOL.clear()
        core._EVENT_POOL.clear()
        captured = []

        def warm_and_capture(world):
            warm_world(world)
            # the objects recycled during the prefix: exactly what a
            # checkpoint taken without draining would hand every child
            captured.extend(core._TIMEOUT_POOL)
            captured.extend(core._EVENT_POOL)

        engine = ScenarioEngine(make_world, warm_and_capture)
        engine.prepare()
        assert captured, "prefix recycled nothing; vacuous test"
        assert core._TIMEOUT_POOL == [] and core._EVENT_POOL == []

        def branch(world):
            shared = 0

            def probe(sim):
                nonlocal shared
                for _ in range(80):
                    t = sim.timeout(1)
                    if any(t is c for c in captured):
                        shared += 1
                    yield t

            _ = world.sim.process(probe(world.sim), name="probe")
            world.sim.run(until=world.sim.now + 200)
            return {"shared": shared}

        results = engine.run([branch, branch], mechanism="fork")
        assert [r["shared"] for r in results] == [0, 0]
        # the parent allocates fresh objects too: the captured-alive
        # refs keep any pool re-admission (getrefcount == 2) impossible
        fresh = engine._world.sim.timeout(1)
        assert all(fresh is not c for c in captured)
