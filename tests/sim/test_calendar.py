"""Heap-vs-calendar equivalence property tests.

The calendar-queue scheduler (DESIGN.md §5) must be *observably
identical* to the legacy binary heap: same process interleaving, same
timestamps, same final clock and sequence count, for any workload.  The
heap variant is kept in the kernel precisely to serve as the reference
here — these tests run seeded pseudo-random workloads under both
schedulers and require the logs to match exactly.

Each worker owns a private seeded ``random.Random``, so its *behaviour*
is a pure function of its seed; the shared log then captures the
kernel's interleaving decisions and nothing else.  The untraced runs
exercise the specialized calendar drain (the production hot loop), the
traced run pins the generic loop to the same order.
"""

import random

import pytest

from repro.sim.core import Simulator
from repro.sim.resources import Resource, Store

N_WORKERS = 8
N_STEPS = 40
#: mix of zero, small, clustered, and far-future delays so ready-deque,
#: bucket-collision, and overflow-ordering paths all get exercised
DELAYS = (0, 0, 1, 3, 7, 97, 1_000, 1_000_000)


def _worker(sim, res, store, log, rng, ident):
    for step in range(N_STEPS):
        value = yield sim.timeout(rng.choice(DELAYS), value=(ident, step))
        log.append(("timeout", sim.now, ident, value))
        roll = rng.random()
        if roll < 0.4:
            yield res.acquire()
            try:
                yield sim.timeout(rng.choice(DELAYS))
            finally:
                res.release()
            log.append(("resource", sim.now, ident))
        elif roll < 0.7:
            yield store.put((ident, step))
            log.append(("put", sim.now, ident))
        else:
            item = yield store.get()
            log.append(("get", sim.now, ident, item))


def _run(scheduler, seed, until=None, traced=False):
    sim = Simulator(scheduler=scheduler)
    res = Resource(sim, capacity=3)
    store = Store(sim, capacity=4)
    log = []
    if traced:
        sim.trace_hook = lambda when, event: None
    for ident in range(N_WORKERS):
        rng = random.Random(seed * 1009 + ident)
        _ = sim.process(_worker(sim, res, store, log, rng, ident))
    sim.run(until=until)
    return log, sim.now, sim._seq


@pytest.mark.parametrize("seed", range(6))
def test_full_run_equivalence(seed):
    calendar = _run("calendar", seed)
    heap = _run("heap", seed)
    assert calendar == heap


@pytest.mark.parametrize("seed", (0, 3))
def test_bounded_run_equivalence(seed):
    # stop mid-flight: the clock must land on `until` and the partial
    # interleavings must agree entry for entry
    for until in (0, 1, 500, 10_000, 2_000_000):
        calendar = _run("calendar", seed, until=until)
        heap = _run("heap", seed, until=until)
        assert calendar == heap, f"diverged with until={until}"


@pytest.mark.parametrize("seed", (1, 4))
def test_specialized_drain_matches_generic_loop(seed):
    # the untraced calendar run takes the specialized recycling drain,
    # the traced one the generic step() loop — same observable order
    assert _run("calendar", seed) == _run("calendar", seed, traced=True)


@pytest.mark.parametrize("scheduler", ("calendar", "heap"))
def test_run_until_equivalence(scheduler):
    def one_shot(sim, store, log):
        item = yield store.get()
        log.append(("got", sim.now, item))
        return item

    def feeder(sim, store):
        for i in range(10):
            yield sim.timeout(50)
            yield store.put(i)

    sim = Simulator(scheduler=scheduler)
    store = Store(sim, capacity=2)
    log = []
    _ = sim.process(feeder(sim, store))
    got = sim.run_process(one_shot(sim, store, log))
    assert got == 0
    assert log == [("got", 50, 0)]
    assert sim.now == 50  # stopped at the trigger, not at queue drain


def test_same_timestamp_fifo_order_matches():
    # every event lands at t=0/t=5 — pure sequence-number ordering,
    # the regime where a sloppy bucket implementation would reorder
    def burst(sim, log, ident):
        yield sim.timeout(0)
        log.append(("a", ident))
        yield sim.timeout(5)
        log.append(("b", ident))
        yield sim.timeout(0)
        log.append(("c", ident))

    logs = {}
    for scheduler in ("calendar", "heap"):
        sim = Simulator(scheduler=scheduler)
        log = []
        for ident in range(16):
            _ = sim.process(burst(sim, log, ident))
        sim.run()
        logs[scheduler] = log
    assert logs["calendar"] == logs["heap"]


def test_unknown_scheduler_rejected():
    with pytest.raises(ValueError, match="scheduler"):
        Simulator(scheduler="splay")
