"""Event-kernel semantics: ordering, processes, conditions, interrupts."""

import pytest

from repro.errors import SimulationError
from repro.sim import Interrupt, Simulator


class TestTimeoutOrdering:
    def test_timeouts_fire_in_time_order(self, sim):
        log = []

        def p(name, delay):
            yield sim.timeout(delay)
            log.append((sim.now, name))

        _ = sim.process(p("late", 30))
        _ = sim.process(p("early", 10))
        _ = sim.process(p("mid", 20))
        sim.run()
        assert log == [(10, "early"), (20, "mid"), (30, "late")]

    def test_same_time_fifo_by_creation(self, sim):
        log = []

        def p(name):
            yield sim.timeout(5)
            log.append(name)

        for name in "abc":
            _ = sim.process(p(name))
        sim.run()
        assert log == ["a", "b", "c"]

    def test_zero_delay_runs_at_current_time(self, sim):
        times = []

        def p():
            yield sim.timeout(0)
            times.append(sim.now)

        _ = sim.process(p())
        sim.run()
        assert times == [0]

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.timeout(-1)  # snacclint: disable=SIM001 (constructor must raise)

    def test_run_until_stops_clock(self, sim):
        def p():
            yield sim.timeout(100)

        _ = sim.process(p())
        sim.run(until=50)
        assert sim.now == 50
        sim.run()
        assert sim.now == 100


class TestProcess:
    def test_return_value_propagates(self, sim):
        def child():
            yield sim.timeout(3)
            return 42

        def parent(out):
            result = yield sim.process(child())
            out.append(result)

        out = []
        _ = sim.process(parent(out))
        sim.run()
        assert out == [42]

    def test_run_process_returns_value(self, sim):
        def body():
            yield sim.timeout(1)
            return "done"

        assert sim.run_process(body()) == "done"

    def test_exception_in_process_surfaces(self, sim):
        def bad():
            yield sim.timeout(1)
            raise ValueError("boom")

        _ = sim.process(bad())
        with pytest.raises(SimulationError) as exc_info:
            sim.run()
        assert isinstance(exc_info.value.__cause__, ValueError)

    def test_exception_propagates_to_waiting_parent(self, sim):
        def bad():
            yield sim.timeout(1)
            raise ValueError("boom")

        def parent(out):
            try:
                yield sim.process(bad())
            except ValueError as e:
                out.append(str(e))

        out = []
        _ = sim.process(parent(out))
        # Handled by the waiting parent: the simulation does not crash.
        sim.run()
        assert out == ["boom"]

    def test_yielding_non_event_fails(self, sim):
        def bad():
            yield 17

        _ = sim.process(bad())
        with pytest.raises(SimulationError):
            sim.run()

    def test_non_generator_rejected(self, sim):
        with pytest.raises(TypeError):
            _ = sim.process(lambda: None)

    def test_is_alive_lifecycle(self, sim):
        def body():
            yield sim.timeout(10)

        p = sim.process(body())
        assert p.is_alive
        sim.run()
        assert not p.is_alive

    def test_process_waits_on_manual_event(self, sim):
        ev = sim.event()
        out = []

        def waiter():
            val = yield ev
            out.append((sim.now, val))

        def trigger():
            yield sim.timeout(7)
            ev.succeed("go")

        _ = sim.process(waiter())
        _ = sim.process(trigger())
        sim.run()
        assert out == [(7, "go")]

    def test_yield_already_triggered_event(self, sim):
        ev = sim.event()
        ev.succeed(5)
        out = []

        def waiter():
            val = yield ev
            out.append(val)

        _ = sim.process(waiter())
        sim.run()
        assert out == [5]


class TestEvent:
    def test_double_succeed_rejected(self, sim):
        ev = sim.event()
        ev.succeed()
        with pytest.raises(SimulationError):
            ev.succeed()

    def test_value_before_trigger_rejected(self, sim):
        with pytest.raises(SimulationError):
            _ = sim.event().value

    def test_fail_requires_exception(self, sim):
        with pytest.raises(TypeError):
            sim.event().fail("not an exception")

    def test_callback_after_processed_runs_immediately(self, sim):
        ev = sim.event()
        ev.succeed(1)
        sim.run()
        hits = []
        ev.add_callback(lambda e: hits.append(e.value))
        assert hits == [1]


class TestConditions:
    def test_all_of_waits_for_all(self, sim):
        out = []

        def body():
            t1 = sim.timeout(5, value="a")
            t2 = sim.timeout(15, value="b")
            vals = yield sim.all_of([t1, t2])
            out.append((sim.now, vals))

        _ = sim.process(body())
        sim.run()
        assert out == [(15, ["a", "b"])]

    def test_any_of_fires_on_first(self, sim):
        out = []

        def body():
            t1 = sim.timeout(5, value="a")
            t2 = sim.timeout(15, value="b")
            vals = yield sim.any_of([t1, t2])
            out.append((sim.now, vals))

        _ = sim.process(body())
        sim.run()
        assert out == [(5, ["a", None])]

    def test_empty_all_of_fires_immediately(self, sim):
        out = []

        def body():
            vals = yield sim.all_of([])
            out.append((sim.now, vals))

        _ = sim.process(body())
        sim.run()
        assert out == [(0, [])]


class TestInterrupt:
    def test_interrupt_wakes_waiting_process(self, sim):
        out = []

        def sleeper():
            try:
                yield sim.timeout(1000)
                out.append("slept")
            except Interrupt as i:
                out.append(("interrupted", sim.now, i.cause))

        def interrupter(target):
            yield sim.timeout(10)
            target.interrupt(cause="wakeup")

        p = sim.process(sleeper())
        _ = sim.process(interrupter(p))
        sim.run()
        assert out == [("interrupted", 10, "wakeup")]

    def test_interrupt_finished_process_rejected(self, sim):
        def body():
            yield sim.timeout(1)

        p = sim.process(body())
        sim.run()
        with pytest.raises(SimulationError):
            p.interrupt()

    def test_process_continues_after_interrupt(self, sim):
        out = []

        def sleeper():
            try:
                yield sim.timeout(1000)
            except Interrupt:
                pass
            yield sim.timeout(5)
            out.append(sim.now)

        def interrupter(target):
            yield sim.timeout(10)
            target.interrupt()

        p = sim.process(sleeper())
        _ = sim.process(interrupter(p))
        sim.run()
        assert out == [15]

    def test_stale_timeout_after_interrupt_is_ignored(self, sim):
        # The interrupted timeout still fires later; it must not corrupt
        # the process state.
        out = []

        def sleeper():
            try:
                yield sim.timeout(50)
            except Interrupt:
                out.append("int")
            yield sim.timeout(100)
            out.append(sim.now)

        def interrupter(target):
            yield sim.timeout(10)
            target.interrupt()

        p = sim.process(sleeper())
        _ = sim.process(interrupter(p))
        sim.run()
        assert out == ["int", 110]


class TestDeterminism:
    def test_identical_runs_produce_identical_traces(self):
        def model(sim, log):
            def worker(name, period, count):
                for i in range(count):
                    yield sim.timeout(period)
                    log.append((sim.now, name, i))

            for k in range(5):
                _ = sim.process(worker(f"w{k}", 7 + k, 10))

        log1, log2 = [], []
        s1, s2 = Simulator(), Simulator()
        model(s1, log1)
        model(s2, log2)
        s1.run()
        s2.run()
        assert log1 == log2
        assert len(log1) == 50
