"""Kernel fast-path semantics: single-waiter slot, inline resume, grants.

The optimizations in ``repro.sim.core`` (DESIGN.md §5) must be invisible:
registration order, interrupt semantics, and FIFO fairness have to match
the unoptimized kernel exactly.  These tests pin the edge cases the fast
paths could plausibly break.
"""

import pytest

from repro.errors import SimulationError
from repro.sim import Interrupt, Simulator
from repro.sim.resources import Resource


class TestSingleWaiterSlot:
    def test_two_processes_waiting_resume_in_registration_order(self, sim):
        """The first waiter rides the slot, the second the callback list —
        both must resume, in the order they registered."""
        ev = sim.event()
        log = []

        def waiter(name):
            value = yield ev
            log.append((name, value))

        _ = sim.process(waiter("first"))
        _ = sim.process(waiter("second"))
        sim.run(until=0)  # both processes reach the yield
        ev.succeed("payload")
        sim.run()
        assert log == [("first", "payload"), ("second", "payload")]

    def test_many_waiters_one_event(self, sim):
        ev = sim.event()
        log = []

        def waiter(i):
            _ = yield ev
            log.append(i)

        for i in range(5):
            _ = sim.process(waiter(i))
        sim.run(until=0)
        ev.succeed()
        sim.run()
        assert log == [0, 1, 2, 3, 4]

    def test_callback_before_process_keeps_order(self, sim):
        """A plain callback registered before any process must still run
        before a process that registers afterwards."""
        ev = sim.event()
        log = []
        ev.add_callback(lambda e: log.append("callback"))

        def waiter():
            _ = yield ev
            log.append("process")

        _ = sim.process(waiter())
        sim.run(until=0)
        ev.succeed()
        sim.run()
        assert log == ["callback", "process"]

    def test_add_callback_after_processing_runs_synchronously(self, sim):
        ev = sim.event()
        ev.succeed(7)
        sim.run()
        assert ev.processed
        log = []
        ev.add_callback(lambda e: log.append(e.value))
        assert log == [7]

    def test_failed_event_raises_in_every_waiter(self, sim):
        ev = sim.event()
        outcomes = []

        def waiter(name):
            try:
                _ = yield ev
                outcomes.append((name, "ok"))
            except RuntimeError as exc:
                outcomes.append((name, str(exc)))

        _ = sim.process(waiter("slot"))
        _ = sim.process(waiter("list"))
        sim.run(until=0)
        ev.fail(RuntimeError("boom"))
        sim.run()
        assert outcomes == [("slot", "boom"), ("list", "boom")]


class TestInterruptDuringFastPath:
    def test_interrupt_lands_while_waiting_in_slot(self, sim):
        """Interrupt a process whose wait occupies the single-waiter slot;
        the stale slot wakeup afterwards must be ignored."""
        log = []

        def victim():
            try:
                yield sim.timeout(100)
                log.append("timeout")
            except Interrupt as intr:
                log.append(("interrupted", intr.cause))
                yield sim.timeout(5)
                log.append(("resumed", sim.now))

        def attacker(proc):
            yield sim.timeout(10)
            proc.interrupt("because")

        victim_proc = sim.process(victim())
        _ = sim.process(attacker(victim_proc))
        sim.run()
        assert log == [("interrupted", "because"), ("resumed", 15)]

    def test_event_firing_before_interrupt_wins(self, sim):
        """The awaited event and the interrupt land at the same timestamp,
        with the interrupt issued first: the awaited event (scheduled
        earlier) is delivered, and the interrupt's deferred throw must
        detect the stale wait and not re-poke the generator."""
        log = []
        holder = {}

        def victim():
            try:
                yield sim.timeout(10)
                log.append("timeout-won")
            except Interrupt:
                log.append("interrupt-won")
            yield sim.timeout(1)
            log.append("after")

        def attacker():
            # Processes at t=10 *before* the victim's timeout (earlier seq):
            # the interrupt targets a wait that then completes normally.
            yield sim.timeout(10)
            holder["victim"].interrupt()

        _ = sim.process(attacker())
        holder["victim"] = sim.process(victim())
        sim.run()
        assert log == ["timeout-won", "after"]

    def test_interrupting_finished_process_raises(self, sim):
        def quick():
            yield sim.timeout(1)

        proc = sim.process(quick())
        sim.run()
        with pytest.raises(SimulationError):
            proc.interrupt()


class TestResourceGrantSemantics:
    def test_fifo_fairness_under_contention(self, sim):
        res = Resource(sim, capacity=1)
        log = []

        def worker(name):
            yield res.acquire()
            try:
                log.append((name, sim.now))
                yield sim.timeout(10)
            finally:
                res.release()

        for name in "abcd":
            _ = sim.process(worker(name))
        sim.run()
        assert log == [("a", 0), ("b", 10), ("c", 20), ("d", 30)]

    def test_free_grant_is_scheduled_not_synchronous(self, sim):
        """A free-capacity grant must be delivered through the heap so it
        keeps its sequence position among same-timestamp events — a
        synchronous grant would reorder the deterministic interleaving."""
        res = Resource(sim, capacity=1)
        log = []

        def acquirer():
            yield res.acquire()
            log.append("granted")
            res.release()

        def bystander():
            yield sim.timeout(0)
            log.append("bystander")

        _ = sim.process(bystander())
        _ = sim.process(acquirer())
        sim.run()
        # The bystander's zero-delay timeout was scheduled before the grant
        # event existed, so it must process first.  A synchronous grant
        # would log "granted" ahead of it.
        assert log == ["bystander", "granted"]
        assert res.in_use == 0

    def test_contention_watcher_fires_on_first_queued_acquire(self, sim):
        res = Resource(sim, capacity=1)
        log = []

        def holder():
            yield res.acquire()
            watcher = res.watch_contention()
            try:
                result = yield sim.any_of([watcher, sim.timeout(100)])
                _ = result
                log.append(("contended" if watcher.triggered else "timed-out",
                            sim.now))
            finally:
                res.unwatch_contention(watcher)
                res.release()

        def competitor():
            yield sim.timeout(30)
            yield res.acquire()
            log.append(("acquired", sim.now))
            res.release()

        _ = sim.process(holder())
        _ = sim.process(competitor())
        sim.run()
        assert log == [("contended", 30), ("acquired", 30)]

    def test_watch_contention_with_queued_waiters_fires_immediately(self, sim):
        res = Resource(sim, capacity=1)

        def holder():
            yield res.acquire()
            yield sim.timeout(50)
            res.release()

        def competitor():
            yield res.acquire()
            res.release()

        _ = sim.process(holder())
        _ = sim.process(competitor())
        sim.run(until=10)
        watcher = res.watch_contention()
        assert watcher.triggered


class TestTimeoutDelayTypes:
    def test_exact_int_and_integral_types_accepted(self, sim):
        import numpy as np

        log = []

        def p():
            yield sim.timeout(3)
            yield sim.timeout(np.int64(4))
            log.append(sim.now)

        _ = sim.process(p())
        sim.run()
        assert log == [7]

    def test_float_delay_rejected_with_units_hint(self, sim):
        with pytest.raises(TypeError, match="repro.units"):
            sim.timeout(1.5)  # snacclint: disable (raising is the point)

    def test_bool_is_an_int_here(self, sim):
        # bool is a subclass of int; the fast path must not misroute it.
        t = sim.timeout(True)
        assert t.delay == 1
