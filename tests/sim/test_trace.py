"""Structured tracing."""

import pytest

from repro.sim import TraceRecord, Tracer


class TestTracer:
    def test_disabled_by_default(self):
        t = Tracer()
        t.emit(10, "src", "evt", x=1)
        assert len(t) == 0

    def test_records_when_enabled(self):
        t = Tracer(enabled=True)
        t.emit(10, "nvme", "doorbell", qid=1, tail=5)
        t.emit(20, "rob", "complete", cid=3)
        assert len(t) == 2
        assert t.records(source="nvme")[0].fields["tail"] == 5
        assert t.records(event="complete")[0].time_ns == 20

    def test_ring_buffer_caps(self):
        t = Tracer(capacity=3, enabled=True)
        for i in range(10):
            t.emit(i, "s", "e")
        assert len(t) == 3
        assert t.records()[0].time_ns == 7

    def test_sink_called(self):
        seen = []
        t = Tracer(enabled=True)
        t.sink = seen.append
        t.emit(1, "a", "b")
        assert len(seen) == 1 and isinstance(seen[0], TraceRecord)

    def test_clear(self):
        t = Tracer(enabled=True)
        t.emit(1, "a", "b")
        t.clear()
        assert len(t) == 0

    def test_str_format(self):
        rec = TraceRecord(time_ns=42, source="mac", event="pause", fields={"q": 1})
        s = str(rec)
        assert "42" in s and "mac" in s and "q=1" in s

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)
