"""Address map: window management, decode, overlap rejection."""

import pytest

from repro.errors import AddressError
from repro.mem import AddressMap


class TestAddressMap:
    def test_decode_hits_correct_window(self):
        m = AddressMap("bus")
        m.add(0x0000, 0x1000, "a", name="A")
        m.add(0x2000, 0x1000, "b", name="B")
        w, off = m.decode(0x2010)
        assert w.target == "b" and off == 0x10

    def test_decode_many_windows(self):
        m = AddressMap()
        for i in range(64):
            m.add(i * 0x10000, 0x8000, i)
        for i in (0, 13, 63):
            w, off = m.decode(i * 0x10000 + 0x7FFF)
            assert w.target == i and off == 0x7FFF

    def test_unmapped_raises(self):
        m = AddressMap()
        m.add(0x1000, 0x1000, "x")
        with pytest.raises(AddressError):
            m.decode(0x0FFF)
        with pytest.raises(AddressError):
            m.decode(0x2000)

    def test_overlap_rejected(self):
        m = AddressMap()
        m.add(0x1000, 0x1000, "x")
        with pytest.raises(AddressError):
            m.add(0x1800, 0x1000, "y")

    def test_adjacent_windows_allowed(self):
        m = AddressMap()
        m.add(0x1000, 0x1000, "x")
        m.add(0x2000, 0x1000, "y")
        assert len(m) == 2

    def test_straddling_access_rejected(self):
        m = AddressMap()
        m.add(0x1000, 0x1000, "x")
        m.add(0x2000, 0x1000, "y")
        with pytest.raises(AddressError):
            m.decode(0x1FF0, nbytes=0x20)

    def test_span_within_window_ok(self):
        m = AddressMap()
        m.add(0x1000, 0x1000, "x")
        w, off = m.decode(0x1F00, nbytes=0x100)
        assert off == 0xF00
