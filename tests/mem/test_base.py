"""Functional memory: dense, sparse, address ranges."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MemoryError_
from repro.mem import AddressRange, Memory, SparseMemory


class TestAddressRange:
    def test_contains(self):
        r = AddressRange(0x1000, 0x100)
        assert r.contains(0x1000)
        assert r.contains(0x10FF)
        assert not r.contains(0x1100)
        assert r.contains(0x1000, 0x100)
        assert not r.contains(0x1000, 0x101)

    def test_overlaps(self):
        a = AddressRange(0, 10)
        assert a.overlaps(AddressRange(5, 10))
        assert not a.overlaps(AddressRange(10, 10))

    def test_offset_of(self):
        r = AddressRange(100, 50)
        assert r.offset_of(120) == 20
        with pytest.raises(MemoryError_):
            r.offset_of(150)

    def test_invalid(self):
        with pytest.raises(ValueError):
            AddressRange(-1, 10)
        with pytest.raises(ValueError):
            AddressRange(0, 0)


class TestMemory:
    def test_write_read_roundtrip(self, rng):
        m = Memory(4096)
        data = rng.integers(0, 256, 100, dtype=np.uint8)
        m.write(10, data)
        assert np.array_equal(m.read(10, 100), data)

    def test_read_returns_copy(self):
        m = Memory(16)
        a = m.read(0, 4)
        a[:] = 0xFF
        assert m.read(0, 4).sum() == 0

    def test_oob_rejected(self):
        m = Memory(16)
        with pytest.raises(MemoryError_):
            m.read(10, 10)
        with pytest.raises(MemoryError_):
            m.write(15, b"\x00\x00")
        with pytest.raises(MemoryError_):
            m.read(-1, 1)

    def test_accepts_bytes(self):
        m = Memory(16)
        m.write(0, b"hello")
        assert bytes(m.read(0, 5)) == b"hello"

    def test_fill(self):
        m = Memory(16)
        m.fill(4, 4, 0xAB)
        assert list(m.read(4, 4)) == [0xAB] * 4
        assert m.read(0, 4).sum() == 0

    def test_view_read_only(self):
        m = Memory(16)
        v = m.view()
        with pytest.raises(ValueError):
            v[0] = 1


class TestSparseMemory:
    def test_unwritten_reads_zero(self):
        m = SparseMemory(1 << 40)  # 1 TiB costs nothing
        assert m.read(123456789, 16).sum() == 0
        assert m.resident_pages == 0

    def test_roundtrip_across_pages(self, rng):
        m = SparseMemory(1 << 30, page_size=4096)
        data = rng.integers(0, 256, 10000, dtype=np.uint8)
        m.write(4000, data)  # bytes 4000..14000 touch pages 0..3
        assert np.array_equal(m.read(4000, 10000), data)
        assert m.resident_pages == 4

    def test_oob_rejected(self):
        m = SparseMemory(8192)
        with pytest.raises(MemoryError_):
            m.write(8000, bytes(300))

    def test_discard_drops_full_pages(self, rng):
        m = SparseMemory(1 << 20)
        m.write(0, rng.integers(0, 256, 8192, dtype=np.uint8))
        assert m.resident_pages == 2
        m.discard(0, 4096)
        assert m.resident_pages == 1
        assert m.read(0, 4096).sum() == 0

    def test_discard_keeps_partial_pages(self, rng):
        m = SparseMemory(1 << 20)
        data = rng.integers(1, 256, 4096, dtype=np.uint8)
        m.write(0, data)
        m.discard(100, 200)  # covers no full page
        assert np.array_equal(m.read(0, 4096), data)

    @given(st.lists(
        st.tuples(st.integers(min_value=0, max_value=60000),
                  st.integers(min_value=1, max_value=5000)),
        min_size=1, max_size=20))
    @settings(max_examples=30, deadline=None)
    def test_property_matches_dense(self, writes):
        """Sparse memory behaves exactly like a dense array."""
        sparse = SparseMemory(1 << 16)
        dense = np.zeros(1 << 16, dtype=np.uint8)
        rng = np.random.default_rng(1)
        for addr, n in writes:
            n = min(n, (1 << 16) - addr)
            if n == 0:
                continue
            data = rng.integers(0, 256, n, dtype=np.uint8)
            sparse.write(addr, data)
            dense[addr:addr + n] = data
        assert np.array_equal(sparse.read(0, 1 << 16), dense)
