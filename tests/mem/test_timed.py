"""Timed memories: URAM, DRAM turnaround, host DRAM, pinned allocator."""

import numpy as np
import pytest

from repro.errors import AllocationError, MemoryError_
from repro.mem import (ChunkedBuffer, DramController, DramTiming, HostDram,
                       PinnedAllocator, SramMemory, UramBuffer)
from repro.mem.base import AddressRange
from repro.units import KiB, MiB, ns_for_bytes


class TestSram:
    def test_timed_roundtrip(self, sim, rng):
        m = SramMemory(sim, 64 * KiB, name="u")
        data = rng.integers(0, 256, 4096, dtype=np.uint8)

        def body():
            yield from m.timed_write(0, data)
            got = yield from m.timed_read(0, 4096)
            return got

        got = sim.run_process(body())
        assert np.array_equal(got, data)
        assert sim.now > 0

    def test_dual_port_no_rw_contention(self, sim):
        """A read and a write issued together finish as if alone."""
        m = SramMemory(sim, 64 * KiB, bandwidth_gbps=1.0, pipeline_latency_ns=0)
        times = {}

        def reader():
            yield from m.timed_read(0, 1000, functional=False)
            times["r"] = sim.now

        def writer():
            yield from m.timed_write(0, nbytes=1000)
            times["w"] = sim.now

        _ = sim.process(reader())
        _ = sim.process(writer())
        sim.run()
        solo = ns_for_bytes(1000, 1.0)
        assert times["r"] == solo
        assert times["w"] == solo

    def test_same_port_serializes(self, sim):
        m = SramMemory(sim, 64 * KiB, bandwidth_gbps=1.0, pipeline_latency_ns=0)
        finish = []

        def reader():
            yield from m.timed_read(0, 1000, functional=False)
            finish.append(sim.now)

        _ = sim.process(reader())
        _ = sim.process(reader())
        sim.run()
        assert finish == [1000, 2000]

    def test_stats_accumulate(self, sim):
        m = SramMemory(sim, 64 * KiB)

        def body():
            yield from m.timed_write(0, nbytes=100)
            yield from m.timed_read(0, 50, functional=False)

        sim.run_process(body())
        assert m.stats.writes == 1 and m.stats.written_bytes == 100
        assert m.stats.reads == 1 and m.stats.read_bytes == 50
        assert m.stats.total_bytes == 150

    def test_oob_timed_access_rejected(self, sim):
        m = SramMemory(sim, 1024)

        def body():
            yield from m.timed_read(1000, 100)

        with pytest.raises(MemoryError_):
            # error surfaces synchronously at generator start
            sim.run_process(body())

    def test_uram_block_count(self, sim):
        u = UramBuffer(sim)  # 4 MiB
        assert u.uram_blocks == 4 * MiB // UramBuffer.URAM_BLOCK_BYTES


class TestDram:
    def test_turnaround_costs_time(self, sim):
        t = DramTiming(peak_gbps=16.0, access_overhead_ns=10, turnaround_ns=100)
        m = DramController(sim, 1 * MiB, timing=t)

        def same_direction():
            yield from m.timed_read(0, 4096, functional=False)
            yield from m.timed_read(0, 4096, functional=False)

        sim.run_process(same_direction())
        t_same = sim.now

        sim2 = type(sim)()
        m2 = DramController(sim2, 1 * MiB, timing=t)

        def alternating():
            yield from m2.timed_read(0, 4096, functional=False)
            yield from m2.timed_write(0, nbytes=4096)

        sim2.run_process(alternating())
        assert sim2.now == t_same + 100
        assert m2.stats.turnarounds == 1

    def test_fifo_service(self, sim):
        m = DramController(sim, 1 * MiB)
        order = []

        def access(i):
            yield from m.timed_read(0, 4096, functional=False)
            order.append(i)

        for i in range(4):
            _ = sim.process(access(i))
        sim.run()
        assert order == [0, 1, 2, 3]

    def test_streaming_gbps_interleaved_slower(self, sim):
        m = DramController(sim, 1 * MiB)
        solo = m.streaming_gbps("write", 4 * KiB, interleaved=False)
        mixed = m.streaming_gbps("write", 4 * KiB, interleaved=True)
        assert mixed < solo

    def test_min_burst_padding(self, sim):
        t = DramTiming(peak_gbps=16.0, access_overhead_ns=0,
                       turnaround_ns=0, min_burst_bytes=64)
        m = DramController(sim, 1 * MiB, timing=t)

        def body():
            yield from m.timed_read(0, 1, functional=False)

        sim.run_process(body())
        assert sim.now == ns_for_bytes(64, 16.0)

    def test_functional_roundtrip(self, sim, rng):
        m = DramController(sim, 1 * MiB)
        data = rng.integers(0, 256, 8192, dtype=np.uint8)

        def body():
            yield from m.timed_write(100, data)
            got = yield from m.timed_read(100, 8192)
            return got

        assert np.array_equal(sim.run_process(body()), data)


class TestHostDram:
    def test_parallel_ports(self, sim):
        m = HostDram(sim, 1 * MiB, bandwidth_gbps=1.0, latency_ns=0)
        finish = []

        def reader():
            yield from m.timed_read(0, 1000, functional=False)
            finish.append(sim.now)

        _ = sim.process(reader())
        _ = sim.process(reader())
        sim.run()
        # capacity-2 read port: both proceed concurrently
        assert finish == [1000, 1000]


class TestPinnedAllocator:
    def region(self, size=256 * MiB):
        return AddressRange(0x1_0000_0000, size)

    def test_small_allocation_contiguous(self):
        a = PinnedAllocator(self.region())
        buf = a.allocate(1 * MiB)
        assert buf.is_contiguous
        assert buf.size == 1 * MiB

    def test_large_allocation_chunked(self):
        a = PinnedAllocator(self.region())
        buf = a.allocate(64 * MiB)
        assert len(buf.chunks) == 16  # 64 MiB in 4 MiB chunks
        assert all(c.size == 4 * MiB for c in buf.chunks)
        assert not buf.is_contiguous

    def test_chunks_not_adjacent(self):
        a = PinnedAllocator(self.region())
        buf = a.allocate(8 * MiB)
        assert buf.chunks[0].end != buf.chunks[1].base

    def test_exhaustion_raises(self):
        a = PinnedAllocator(self.region(8 * MiB))
        with pytest.raises(AllocationError):
            a.allocate(16 * MiB)

    def test_zero_size_rejected(self):
        with pytest.raises(AllocationError):
            PinnedAllocator(self.region()).allocate(0)


class TestChunkedBuffer:
    def make(self):
        # 3 disjoint 4 KiB chunks
        return ChunkedBuffer([
            AddressRange(0x10000, 4096),
            AddressRange(0x30000, 4096),
            AddressRange(0x50000, 4096),
        ])

    def test_translate(self):
        b = self.make()
        assert b.translate(0) == 0x10000
        assert b.translate(4095) == 0x10FFF
        assert b.translate(4096) == 0x30000
        assert b.translate(8192 + 5) == 0x50005

    def test_translate_oob(self):
        with pytest.raises(MemoryError_):
            self.make().translate(3 * 4096)

    def test_spans_within_chunk(self):
        b = self.make()
        spans = b.spans(100, 200)
        assert spans == [AddressRange(0x10064, 200)]

    def test_spans_across_chunks(self):
        b = self.make()
        spans = b.spans(4000, 200)
        assert spans == [AddressRange(0x10FA0, 96), AddressRange(0x30000, 104)]
        assert sum(s.size for s in spans) == 200

    def test_spans_entire_buffer(self):
        b = self.make()
        spans = b.spans(0, 3 * 4096)
        assert len(spans) == 3
        assert sum(s.size for s in spans) == 3 * 4096

    def test_uneven_last_chunk(self):
        b = ChunkedBuffer([AddressRange(0, 4096), AddressRange(8192, 1024)])
        assert b.size == 5120
        assert b.translate(4096 + 100) == 8192 + 100
