"""The SnaccPerf workload engine itself."""

import pytest

from repro.core import StreamerVariant, build_snacc_system
from repro.core.bench import SnaccPerf, SnaccRunResult
from repro.errors import ConfigError
from repro.sim import Simulator
from repro.systems import HostSystemConfig
from repro.units import KiB, MiB


@pytest.fixture
def perf(sim):
    system = build_snacc_system(sim, StreamerVariant.URAM,
                                HostSystemConfig(functional=False))
    system.initialize()
    return SnaccPerf(sim, system.user)


class TestSnaccPerf:
    def test_seq_read_accounts_bytes(self, sim, perf):
        run = sim.run_process(perf.seq_read(8 * MiB))
        assert run.total_bytes == 8 * MiB
        assert run.gbps > 1.0

    def test_rand_ops_complete_all(self, sim, perf):
        run = sim.run_process(perf.rand_read(1 * MiB))
        assert run.total_bytes == 1 * MiB
        run = sim.run_process(perf.rand_write(1 * MiB))
        assert run.total_bytes == 1 * MiB

    def test_latency_probes_return_samples(self, sim, perf):
        rl = sim.run_process(perf.read_latency(samples=5))
        wl = sim.run_process(perf.write_latency(samples=5))
        assert len(rl) == 5 and len(wl) == 5
        assert all(v > 0 for v in rl + wl)

    def test_misaligned_total_rejected(self, sim, perf):
        with pytest.raises(ConfigError):
            sim.run_process(perf.rand_read(4 * KiB + 1))

    def test_result_requires_latencies_for_mean(self):
        r = SnaccRunResult(10, 10, [])
        with pytest.raises(ConfigError):
            _ = r.mean_latency_us
        r2 = SnaccRunResult(10, 10, [2000])
        assert r2.mean_latency_us == pytest.approx(2.0)
