"""Property-based end-to-end check: arbitrary write/read plans round-trip."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import StreamerVariant, build_snacc_system
from repro.sim import Simulator
from repro.systems import HostSystemConfig
from repro.units import KiB


# LBA-aligned lengths and addresses within a small device region
_lengths = st.integers(min_value=1, max_value=64).map(lambda k: k * 512)
_addrs = st.integers(min_value=0, max_value=255).map(lambda k: k * 32 * KiB)


@given(st.lists(st.tuples(_addrs, _lengths), min_size=1, max_size=6,
                unique_by=lambda t: t[0]))
@settings(max_examples=12, deadline=None)
def test_any_write_plan_roundtrips(plan):
    """Whatever (disjoint) write plan the PE issues, readback matches."""
    sim = Simulator()
    system = build_snacc_system(sim, StreamerVariant.URAM,
                                HostSystemConfig())
    system.initialize()
    rng = np.random.default_rng(len(plan))
    blobs = {addr: rng.integers(0, 256, n, dtype=np.uint8)
             for addr, n in plan}

    def body():
        for addr, n in plan:
            yield from system.user.write(addr, blobs[addr])
        out = {}
        for addr, n in plan:
            out[addr] = yield from system.user.read(addr, n)
        return out

    out = sim.run_process(body())
    for addr, n in plan:
        assert np.array_equal(out[addr], blobs[addr]), hex(addr)
