"""Reorder buffer: OoO completion bits, in-order retirement, OoO extension."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ReorderBuffer, RobEntry
from repro.errors import StreamerError
from repro.sim import Simulator


def entry(kind="read", n=4096):
    return RobEntry(kind=kind, device_addr=0, nbytes=n, buf_offset=0,
                    user_last=True)


class TestAllocation:
    def test_window_fills_then_blocks(self, sim):
        rob = ReorderBuffer(sim, 4)
        cids = [rob.try_allocate(entry()) for _ in range(4)]
        assert all(c is not None for c in cids)
        assert rob.try_allocate(entry()) is None
        assert rob.in_flight == 4

    def test_cids_map_to_slots(self, sim):
        rob = ReorderBuffer(sim, 4)
        cids = [rob.try_allocate(entry()) for _ in range(4)]
        assert [c % 4 for c in cids] == [0, 1, 2, 3]

    def test_depth_must_be_power_of_two(self, sim):
        with pytest.raises(StreamerError):
            ReorderBuffer(sim, 3)

    def test_blocking_allocate(self, sim):
        rob = ReorderBuffer(sim, 2)
        c0 = rob.try_allocate(entry())
        rob.try_allocate(entry())
        got = []

        def alloc():
            cid = yield from rob.allocate(entry())
            got.append((sim.now, cid))

        def complete_and_pop():
            yield sim.timeout(50)
            rob.complete(c0, 0)
            yield from rob.pop_next()

        _ = sim.process(alloc())
        _ = sim.process(complete_and_pop())
        sim.run()
        assert got[0][0] == 50


class TestInOrderRetirement:
    def test_out_of_order_completions_retire_in_order(self, sim):
        rob = ReorderBuffer(sim, 8)
        entries = [entry() for _ in range(3)]
        cids = [rob.try_allocate(e) for e in entries]
        popped = []

        def popper():
            for _ in range(3):
                e = yield from rob.pop_next()
                popped.append((sim.now, e.cid))

        def completer():
            yield sim.timeout(10)
            rob.complete(cids[2], 0)      # youngest completes first
            yield sim.timeout(10)
            rob.complete(cids[1], 0)
            yield sim.timeout(10)
            rob.complete(cids[0], 0)      # head last

        _ = sim.process(popper())
        _ = sim.process(completer())
        sim.run()
        # nothing retires until the head completes at t=30; then all burst
        assert [cid for _t, cid in popped] == cids
        assert [t for t, _ in popped] == [30, 30, 30]

    def test_head_completion_unblocks_issue(self, sim):
        rob = ReorderBuffer(sim, 2)
        c0 = rob.try_allocate(entry())
        c1 = rob.try_allocate(entry())
        rob.complete(c1, 0)  # non-head done: still no slot
        assert rob.try_allocate(entry()) is None
        rob.complete(c0, 0)

        def body():
            yield from rob.pop_next()

        sim.run_process(body())
        assert rob.try_allocate(entry()) is not None

    def test_status_propagates(self, sim):
        rob = ReorderBuffer(sim, 2)
        cid = rob.try_allocate(entry())
        rob.complete(cid, 0x80)

        def body():
            e = yield from rob.pop_next()
            return e

        e = sim.run_process(body())
        assert e.status == 0x80 and not e.ok


class TestCompletionErrors:
    def test_unknown_cid_rejected(self, sim):
        rob = ReorderBuffer(sim, 4)
        with pytest.raises(StreamerError):
            rob.complete(99, 0)

    def test_duplicate_completion_rejected(self, sim):
        rob = ReorderBuffer(sim, 4)
        cid = rob.try_allocate(entry())
        rob.complete(cid, 0)
        with pytest.raises(StreamerError):
            rob.complete(cid, 0)

    def test_stale_cid_rejected(self, sim):
        """A cid from a previous window epoch must not match."""
        rob = ReorderBuffer(sim, 2)
        c0 = rob.try_allocate(entry())
        rob.complete(c0, 0)

        def body():
            yield from rob.pop_next()

        sim.run_process(body())
        rob.try_allocate(entry())  # reuses slot 0 with a new cid
        with pytest.raises(StreamerError):
            rob.complete(c0, 0)  # old cid: slot holds a different command


class TestOutOfOrder:
    def test_ooo_retires_completed_past_blocked_head(self, sim):
        rob = ReorderBuffer(sim, 4, out_of_order=True)
        cids = [rob.try_allocate(entry()) for _ in range(3)]
        rob.complete(cids[1], 0)

        def body():
            e = yield from rob.pop_next()
            return e

        e = sim.run_process(body())
        assert e.cid == cids[1]
        # the freed slot becomes available once the window wraps to it
        assert rob.in_flight == 2

    def test_ooo_prefers_head_when_done(self, sim):
        rob = ReorderBuffer(sim, 4, out_of_order=True)
        cids = [rob.try_allocate(entry()) for _ in range(2)]
        rob.complete(cids[0], 0)
        rob.complete(cids[1], 0)

        def body():
            first = yield from rob.pop_next()
            second = yield from rob.pop_next()
            return first, second

        first, second = sim.run_process(body())
        assert (first.cid, second.cid) == (cids[0], cids[1])


class TestCidWraparound:
    """NVMe CIDs are 15-bit; the ROB must stay correct across the wrap."""

    def test_depth_above_0x4000_rejected(self, sim):
        # at depth 0x8000 the OoO epoch modulus collapses to 1 and two
        # in-flight commands could share a CID
        with pytest.raises(StreamerError):
            ReorderBuffer(sim, 0x8000)

    def test_depth_0x4000_accepted(self, sim):
        rob = ReorderBuffer(sim, 0x4000, out_of_order=True)
        assert rob.try_allocate(entry()) == 0

    def _pop(self, sim, rob):
        def body():
            e = yield from rob.pop_next()
            return e
        return sim.run_process(body())

    def test_inorder_wrap_past_15_bit_boundary(self, sim):
        rob = ReorderBuffer(sim, 4)
        # fast-forward the issue stream to just below the CID boundary
        # (equivalent to issuing and retiring 0x7FFE commands)
        rob._issue_seq = rob._head_seq = rob._retired = 0x7FFE
        cids = [rob.try_allocate(entry()) for _ in range(4)]
        assert cids == [0x7FFE, 0x7FFF, 0x0000, 0x0001]
        for cid in cids:
            rob.complete(cid, 0)
        assert [self._pop(sim, rob).cid for _ in cids] == cids
        # post-wrap cids are fresh: the pre-wrap ones are stale again
        rob.try_allocate(entry())
        with pytest.raises(StreamerError):
            rob.complete(0x7FFE, 0)

    def test_ooo_wrap_past_15_bit_boundary(self, sim):
        rob = ReorderBuffer(sim, 4, out_of_order=True)
        # last epoch before the wrap: slot s gets cid 0x7FFC + s
        rob._slot_epoch = [0x7FFF // 4] * 4
        old = [rob.try_allocate(entry()) for _ in range(4)]
        assert old == [0x7FFC, 0x7FFD, 0x7FFE, 0x7FFF]
        for cid in old:
            rob.complete(cid, 0)
        assert [self._pop(sim, rob).cid for _ in old] == old
        new = [rob.try_allocate(entry()) for _ in range(4)]
        assert new == [0, 1, 2, 3]          # epoch wrapped to zero
        assert len(set(old + new)) == 8     # no CID reuse across the wrap
        with pytest.raises(StreamerError):
            rob.complete(old[0], 0)         # pre-wrap cid is stale


class TestPropertyBased:
    @given(st.integers(min_value=1, max_value=5),
           st.lists(st.integers(min_value=0, max_value=10 ** 6),
                    min_size=1, max_size=40))
    @settings(max_examples=40, deadline=None)
    def test_retirement_order_equals_issue_order(self, depth_log, delays):
        """Whatever the completion delays, in-order mode retires in issue order."""
        depth = 1 << depth_log
        sim = Simulator()
        rob = ReorderBuffer(sim, depth)
        issued = []
        popped = []

        def driver():
            for d in delays:
                e = entry()
                cid = yield from rob.allocate(e)
                issued.append(cid)
                _ = sim.process(completer(cid, d))

        def completer(cid, delay):
            yield sim.timeout(delay)
            rob.complete(cid, 0)

        def popper():
            for _ in delays:
                e = yield from rob.pop_next()
                popped.append(e.cid)

        _ = sim.process(driver())
        _ = sim.process(popper())
        sim.run()
        assert popped == issued
