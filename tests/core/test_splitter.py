"""Command splitting at 1 MiB device-address boundaries (§4.2)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import split_command
from repro.errors import StreamerError
from repro.units import KiB, MiB


class TestSplitCommand:
    def test_small_command_unsplit(self):
        segs = split_command(0, 4 * KiB, 1 * MiB)
        assert len(segs) == 1
        assert segs[0].device_addr == 0 and segs[0].nbytes == 4 * KiB
        assert segs[0].last

    def test_exact_boundary_sizes(self):
        segs = split_command(0, 3 * MiB, 1 * MiB)
        assert [s.nbytes for s in segs] == [1 * MiB] * 3
        assert [s.device_addr for s in segs] == [0, 1 * MiB, 2 * MiB]
        assert [s.last for s in segs] == [False, False, True]

    def test_unaligned_start_gets_short_head(self):
        # start 768 KiB into a segment: head piece is 256 KiB
        segs = split_command(768 * KiB, 1 * MiB, 1 * MiB)
        assert [s.nbytes for s in segs] == [256 * KiB, 768 * KiB]
        assert segs[0].device_addr == 768 * KiB
        assert segs[1].device_addr == 1 * MiB

    def test_short_tail(self):
        segs = split_command(0, 1 * MiB + 4 * KiB, 1 * MiB)
        assert [s.nbytes for s in segs] == [1 * MiB, 4 * KiB]

    def test_invalid(self):
        with pytest.raises(StreamerError):
            split_command(0, 0, 1 * MiB)
        with pytest.raises(StreamerError):
            split_command(-1, 10, 1 * MiB)
        with pytest.raises(StreamerError):
            split_command(0, 10, 0)

    @given(st.integers(min_value=0, max_value=1 << 40),
           st.integers(min_value=1, max_value=16 * MiB),
           st.sampled_from([64 * KiB, 1 * MiB, 2 * MiB]))
    def test_property_cover_exactly(self, addr, nbytes, max_cmd):
        """Segments tile the transfer exactly, in order, within limits."""
        segs = split_command(addr, nbytes, max_cmd)
        assert sum(s.nbytes for s in segs) == nbytes
        assert segs[0].device_addr == addr
        assert segs[-1].last and not any(s.last for s in segs[:-1])
        pos = addr
        for s in segs:
            assert s.device_addr == pos
            assert 0 < s.nbytes <= max_cmd
            pos += s.nbytes
        # every segment except the first starts on a boundary
        for s in segs[1:]:
            assert s.device_addr % max_cmd == 0
        # every segment except the last ends on a boundary
        for s in segs[:-1]:
            assert (s.device_addr + s.nbytes) % max_cmd == 0
