"""Extent allocator: contiguity, 4 KiB grains, arbitrary-order frees."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ExtentAllocator
from repro.errors import StreamerError
from repro.sim import Simulator
from repro.units import KiB, MiB


class TestBasics:
    def test_allocations_aligned_and_disjoint(self, sim):
        a = ExtentAllocator(sim, 1 * MiB)
        offs = [a.try_allocate(10 * KiB) for _ in range(4)]
        assert all(o is not None and o % (4 * KiB) == 0 for o in offs)
        # 10 KiB pads to 12 KiB
        assert sorted(offs) == [0, 12 * KiB, 24 * KiB, 36 * KiB]

    def test_full_returns_none(self, sim):
        a = ExtentAllocator(sim, 16 * KiB)
        assert a.try_allocate(16 * KiB) == 0
        assert a.try_allocate(4 * KiB) is None

    def test_free_and_reuse(self, sim):
        a = ExtentAllocator(sim, 16 * KiB)
        o = a.try_allocate(16 * KiB)
        a.free(o)
        assert a.try_allocate(16 * KiB) == 0

    def test_out_of_order_frees_coalesce(self, sim):
        a = ExtentAllocator(sim, 64 * KiB)
        offs = [a.try_allocate(16 * KiB) for _ in range(4)]
        a.free(offs[1])
        a.free(offs[3])
        a.free(offs[2])   # middle freed last: must coalesce both sides
        assert a.try_allocate(48 * KiB) == 16 * KiB

    def test_double_free_rejected(self, sim):
        a = ExtentAllocator(sim, 16 * KiB)
        o = a.try_allocate(4 * KiB)
        a.free(o)
        with pytest.raises(StreamerError):
            a.free(o)

    def test_oversized_rejected(self, sim):
        a = ExtentAllocator(sim, 16 * KiB)
        with pytest.raises(StreamerError):
            a.try_allocate(32 * KiB)
        with pytest.raises(StreamerError):
            a.try_allocate(0)

    def test_shrink_releases_tail(self, sim):
        a = ExtentAllocator(sim, 64 * KiB)
        o = a.try_allocate(64 * KiB)
        a.shrink(o, 8 * KiB)
        assert a.try_allocate(56 * KiB) == 8 * KiB

    def test_shrink_cannot_grow(self, sim):
        a = ExtentAllocator(sim, 64 * KiB)
        o = a.try_allocate(8 * KiB)
        with pytest.raises(StreamerError):
            a.shrink(o, 16 * KiB)

    def test_blocking_allocate_waits_for_free(self, sim):
        a = ExtentAllocator(sim, 16 * KiB)
        first = a.try_allocate(16 * KiB)
        got = []

        def waiter():
            off = yield from a.allocate(4 * KiB)
            got.append((sim.now, off))

        def freer():
            yield sim.timeout(100)
            a.free(first)

        _ = sim.process(waiter())
        _ = sim.process(freer())
        sim.run()
        assert got == [(100, 0)]

    def test_high_watermark(self, sim):
        a = ExtentAllocator(sim, 64 * KiB)
        o1 = a.try_allocate(16 * KiB)
        o2 = a.try_allocate(16 * KiB)
        a.free(o1)
        a.free(o2)
        assert a.high_watermark == 32 * KiB
        assert a.used == 0


class TestProperty:
    @given(st.lists(st.tuples(st.booleans(),
                              st.integers(min_value=1, max_value=64 * KiB)),
                    min_size=1, max_size=60))
    @settings(max_examples=50, deadline=None)
    def test_no_overlap_ever(self, ops):
        """Live extents never overlap; free bytes account exactly."""
        sim = Simulator()
        a = ExtentAllocator(sim, 256 * KiB)
        live = {}
        import random
        rnd = random.Random(42)
        for is_alloc, size in ops:
            if is_alloc or not live:
                off = a.try_allocate(size)
                if off is not None:
                    padded = (size + 4095) & ~4095
                    for o2, s2 in live.items():
                        assert off + padded <= o2 or o2 + s2 <= off
                    live[off] = padded
            else:
                off = rnd.choice(list(live))
                a.free(off)
                del live[off]
            assert a.used == sum(live.values())
            assert a.free_bytes == 256 * KiB - a.used
