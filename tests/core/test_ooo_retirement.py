"""The §7 out-of-order retirement extension, end to end."""

import numpy as np
import pytest
from dataclasses import replace

from repro.core import (StreamerVariant, build_snacc_system,
                        default_config_for)
from repro.core.bench import SnaccPerf
from repro.sim import Simulator
from repro.systems import HostSystemConfig
from repro.units import KiB, MiB


def ooo_system(functional=True):
    sim = Simulator()
    cfg = replace(default_config_for(StreamerVariant.URAM),
                  out_of_order_retirement=True)
    system = build_snacc_system(sim, StreamerVariant.URAM,
                                HostSystemConfig(functional=functional),
                                streamer_config=cfg)
    system.initialize()
    return sim, system


class TestOooCorrectness:
    def test_write_read_roundtrip(self, rng):
        sim, system = ooo_system()
        data = rng.integers(0, 256, 2 * MiB + 8 * KiB, dtype=np.uint8)

        def body():
            yield from system.user.write(0x8000, data)
            got = yield from system.user.read(0x8000, len(data))
            return got

        assert np.array_equal(sim.run_process(body()), data)

    def test_many_small_writes_land_correctly(self, rng):
        """OoO slot recycling must not cross-wire buffers or CIDs."""
        sim, system = ooo_system()
        blobs = [rng.integers(0, 256, 4 * KiB, dtype=np.uint8)
                 for _ in range(96)]  # > queue depth: slots recycle

        def body():
            for i, b in enumerate(blobs):
                yield from system.user.issue_write(i * 8 * KiB, b)
            for _ in blobs:
                yield from system.user.collect_write_response()

        sim.run_process(body())
        ns = system.host.ssd.namespace
        for i, b in enumerate(blobs):
            assert np.array_equal(ns.read_blocks(i * 16, 8), b)


class TestOooPerformance:
    def test_ooo_beats_in_order_on_random_reads(self):
        """The paper's §7 motivation: recover the Fig 4b random-read gap."""
        results = {}
        for ooo in (False, True):
            sim = Simulator()
            cfg = replace(default_config_for(StreamerVariant.URAM),
                          out_of_order_retirement=ooo)
            system = build_snacc_system(
                sim, StreamerVariant.URAM,
                HostSystemConfig(functional=False), streamer_config=cfg)
            system.initialize()
            perf = SnaccPerf(sim, system.user)
            results[ooo] = sim.run_process(perf.rand_read(12 * MiB)).gbps
        assert results[True] > results[False] * 1.3

    def test_ooo_sequential_unchanged(self):
        """Sequential transfers are already in-order: OoO is a no-op there."""
        rates = {}
        for ooo in (False, True):
            sim = Simulator()
            cfg = replace(default_config_for(StreamerVariant.URAM),
                          out_of_order_retirement=ooo)
            system = build_snacc_system(
                sim, StreamerVariant.URAM,
                HostSystemConfig(functional=False), streamer_config=cfg)
            system.initialize()
            perf = SnaccPerf(sim, system.user)
            rates[ooo] = sim.run_process(perf.seq_read(64 * MiB)).gbps
        assert rates[True] == pytest.approx(rates[False], rel=0.05)
