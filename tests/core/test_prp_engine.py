"""On-the-fly PRP synthesis: the bit-mirror and register-file schemes."""

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import RegfilePrpEngine, UramPrpEngine
from repro.errors import StreamerError
from repro.units import MiB, PAGE

WINDOW = 0x20_0080_0000  # aligned to 8 MiB


def unpack(raw):
    return list(struct.unpack(f"<{len(raw) // 8}Q", raw))


class TestUramScheme:
    def engine(self):
        return UramPrpEngine(WINDOW, 4 * MiB)

    def test_mirror_bit_is_22_for_4mib(self):
        assert self.engine().mirror_bit == 22

    def test_single_page(self):
        prp1, prp2 = self.engine().entries_for(0x3000, 1)
        assert prp1 == WINDOW + 0x3000 and prp2 == 0

    def test_two_pages_direct(self):
        prp1, prp2 = self.engine().entries_for(0x3000, 2)
        assert prp2 == WINDOW + 0x4000

    def test_list_prp2_has_mirror_bit(self):
        eng = self.engine()
        prp1, prp2 = eng.entries_for(0x3000, 256)
        # second data page mirrored into the upper half: bit 22 set
        assert prp2 == WINDOW + 4 * MiB + 0x4000
        assert (prp2 - WINDOW) & (1 << 22)

    def test_synth_recovers_consecutive_pages(self):
        """The controller's list read returns exactly the remaining PRPs."""
        eng = self.engine()
        buf_off = 0x10000
        _prp1, prp2 = eng.entries_for(buf_off, 256)
        mirror_off = prp2 - WINDOW - 4 * MiB
        entries = unpack(eng.synth_read(mirror_off, 255 * 8))
        expected = [WINDOW + buf_off + (k + 1) * PAGE for k in range(255)]
        assert entries == expected

    def test_synth_partial_read_with_offset(self):
        """Reads at an offset within the list page yield later entries."""
        eng = self.engine()
        _p1, prp2 = eng.entries_for(0x20000, 256)
        mirror_off = prp2 - WINDOW - 4 * MiB
        entries = unpack(eng.synth_read(mirror_off + 10 * 8, 5 * 8))
        expected = [WINDOW + 0x20000 + (11 + k) * PAGE for k in range(5)]
        assert entries == expected

    def test_unaligned_offset_rejected(self):
        with pytest.raises(StreamerError):
            self.engine().entries_for(0x1001, 2)

    def test_misaligned_synth_rejected(self):
        with pytest.raises(StreamerError):
            self.engine().synth_read(0, 7)

    def test_bad_window_alignment_rejected(self):
        with pytest.raises(StreamerError):
            UramPrpEngine(0x1000, 4 * MiB)

    def test_non_power_of_two_buffer_rejected(self):
        with pytest.raises(StreamerError):
            UramPrpEngine(WINDOW, 3 * MiB)

    @given(st.integers(min_value=0, max_value=(4 * MiB // PAGE) - 256),
           st.integers(min_value=3, max_value=256))
    @settings(max_examples=50, deadline=None)
    def test_property_walk_equals_direct(self, page0, npages):
        """Walking the synthesized list reproduces base + k*4096 exactly."""
        eng = self.engine()
        buf_off = page0 * PAGE
        prp1, prp2 = eng.entries_for(buf_off, npages)
        mirror_off = prp2 - WINDOW - 4 * MiB
        entries = unpack(eng.synth_read(mirror_off, (npages - 1) * 8))
        assert entries[0] == prp1 + PAGE
        for a, b in zip(entries, entries[1:]):
            assert b - a == PAGE


class TestRegfileScheme:
    PRP_WINDOW = 0x20_0000_0000

    def engine(self):
        return RegfilePrpEngine(self.PRP_WINDOW, nslots=64)

    def test_direct_modes_skip_regfile(self):
        eng = self.engine()
        p1, p2 = eng.entries_for(0x8000, 1, slot=3)
        assert (p1, p2) == (0x8000, 0)
        p1, p2 = eng.entries_for(0x8000, 2, slot=3)
        assert p2 == 0x9000
        with pytest.raises(StreamerError):
            eng.synth_read(3 * PAGE, 8)  # nothing registered

    def test_list_mode_uses_slot_page(self):
        eng = self.engine()
        _p1, p2 = eng.entries_for(0x10000, 256, slot=5)
        assert p2 == self.PRP_WINDOW + 5 * PAGE
        entries = unpack(eng.synth_read(5 * PAGE, 255 * 8))
        assert entries == [0x10000 + (k + 1) * PAGE for k in range(255)]

    def test_translate_applies_per_entry(self):
        """Host-DRAM chunk translation: each entry resolved individually."""
        eng = self.engine()
        # chunks of 4 MiB: logical 0 -> 0x5000_0000, logical 4MiB -> 0x7000_0000
        def translate(off):
            return (0x5000_0000 + off if off < 4 * MiB
                    else 0x7000_0000 + (off - 4 * MiB))
        base = 4 * MiB - 2 * PAGE  # command straddles the chunk boundary
        _p1, p2 = eng.entries_for(base, 4, slot=0, translate=translate)
        entries = unpack(eng.synth_read(0, 3 * 8))
        assert entries[0] == 0x5000_0000 + 4 * MiB - PAGE
        assert entries[1] == 0x7000_0000          # crossed into chunk 2
        assert entries[2] == 0x7000_0000 + PAGE

    def test_slots_are_independent(self):
        eng = self.engine()
        eng.entries_for(0x10000, 4, slot=1)
        eng.entries_for(0x50000, 4, slot=2)
        e1 = unpack(eng.synth_read(1 * PAGE, 8))
        e2 = unpack(eng.synth_read(2 * PAGE, 8))
        assert e1 == [0x11000] and e2 == [0x51000]

    def test_release_clears_slot(self):
        eng = self.engine()
        eng.entries_for(0x10000, 4, slot=1)
        eng.release(1)
        with pytest.raises(StreamerError):
            eng.synth_read(1 * PAGE, 8)

    def test_bad_slot_rejected(self):
        eng = self.engine()
        with pytest.raises(StreamerError):
            eng.entries_for(0, 4, slot=64)
        with pytest.raises(StreamerError):
            eng.release(-1)

    def test_read_across_slot_page_rejected(self):
        eng = self.engine()
        eng.entries_for(0x10000, 256, slot=0)
        with pytest.raises(StreamerError):
            eng.synth_read(PAGE - 8, 16)  # straddles into slot 1's page
