"""End-to-end SNAcc streamer tests: data integrity, protocol behaviour,
backpressure, errors — across all three variants."""

import numpy as np
import pytest

from repro.core import StreamerVariant, build_snacc_system
from repro.errors import StreamerError
from repro.sim import Simulator
from repro.systems import HostSystemConfig
from repro.units import KiB, MiB

ALL_VARIANTS = list(StreamerVariant)


def make_system(variant, **host_kw):
    sim = Simulator()
    sys_ = build_snacc_system(sim, variant, HostSystemConfig(**host_kw))
    sys_.initialize()
    return sim, sys_


class TestDataIntegrity:
    @pytest.mark.parametrize("variant", ALL_VARIANTS, ids=lambda v: v.value)
    def test_single_4k_roundtrip(self, variant, rng):
        sim, sys_ = make_system(variant)
        data = rng.integers(0, 256, 4 * KiB, dtype=np.uint8)

        def body():
            yield from sys_.user.write(0x4000, data)
            got = yield from sys_.user.read(0x4000, 4 * KiB)
            return got

        assert np.array_equal(sim.run_process(body()), data)

    @pytest.mark.parametrize("variant", ALL_VARIANTS, ids=lambda v: v.value)
    def test_multi_segment_roundtrip(self, variant, rng):
        """2.5 MiB transfer: three NVMe commands, split at 1 MiB boundaries."""
        sim, sys_ = make_system(variant)
        n = 2 * MiB + 512 * KiB
        data = rng.integers(0, 256, n, dtype=np.uint8)

        def body():
            yield from sys_.user.write(5 * MiB, data)
            got = yield from sys_.user.read(5 * MiB, n)
            return got

        got = sim.run_process(body())
        assert np.array_equal(got, data)
        # write split into 3 + read split into 3
        assert sys_.streamer.stats.nvme_commands == 6

    def test_unaligned_start_splits_at_device_boundary(self, rng):
        sim, sys_ = make_system(StreamerVariant.URAM)
        data = rng.integers(0, 256, 1 * MiB, dtype=np.uint8)
        addr = 1 * MiB - 256 * KiB  # head piece of 256 KiB, then 768 KiB

        def body():
            yield from sys_.user.write(addr, data)
            got = yield from sys_.user.read(addr, 1 * MiB)
            return got

        assert np.array_equal(sim.run_process(body()), data)
        assert sys_.streamer.stats.nvme_commands == 4  # 2 writes + 2 reads

    def test_data_lands_on_namespace_at_right_lba(self, rng):
        sim, sys_ = make_system(StreamerVariant.URAM)
        data = rng.integers(0, 256, 8 * KiB, dtype=np.uint8)

        def body():
            yield from sys_.user.write(64 * KiB, data)

        sim.run_process(body())
        ns = sys_.host.ssd.namespace
        assert np.array_equal(ns.read_blocks(64 * KiB // 512, 16), data)

    def test_interleaved_reads_and_writes(self, rng):
        """Concurrent user reads and writes to disjoint regions stay correct."""
        sim, sys_ = make_system(StreamerVariant.URAM)
        ns = sys_.host.ssd.namespace
        pre = rng.integers(0, 256, 256 * KiB, dtype=np.uint8)
        ns.write_blocks(0, pre)  # pre-populate region A
        wdata = rng.integers(0, 256, 256 * KiB, dtype=np.uint8)
        results = {}

        def reader():
            got = yield from sys_.user.read(0, 256 * KiB)
            results["read"] = got

        def writer():
            yield from sys_.user.write(4 * MiB, wdata)

        def body():
            jobs = [sim.process(reader()), sim.process(writer())]
            yield sim.all_of(jobs)

        sim.run_process(body())
        assert np.array_equal(results["read"], pre)
        assert np.array_equal(ns.read_blocks(4 * MiB // 512, 512), wdata)

    def test_sequential_user_commands_in_order(self, rng):
        """Back-to-back writes then reads return data in command order."""
        sim, sys_ = make_system(StreamerVariant.URAM)
        blobs = [rng.integers(0, 256, 16 * KiB, dtype=np.uint8)
                 for _ in range(8)]

        def body():
            for i, b in enumerate(blobs):
                yield from sys_.user.issue_write(i * 64 * KiB, b)
            for _ in blobs:
                yield from sys_.user.collect_write_response()
            out = []
            for i in range(8):
                yield from sys_.user.issue_read(i * 64 * KiB, 16 * KiB)
            for _ in range(8):
                out.append((yield from sys_.user.collect_read()))
            return out

        out = sim.run_process(body())
        for got, want in zip(out, blobs):
            assert np.array_equal(got, want)


class TestProtocolMechanics:
    def test_controller_reads_prps_on_the_fly(self):
        """1 MiB commands force PRP list reads served by synthesis."""
        sim, sys_ = make_system(StreamerVariant.URAM, functional=False)

        def body():
            yield from sys_.user.write(0, nbytes=1 * MiB)

        sim.run_process(body())
        assert sys_.host.ssd.controller.stats.prp_list_reads == 1

    def test_no_prp_list_for_small_commands(self):
        sim, sys_ = make_system(StreamerVariant.URAM, functional=False)

        def body():
            yield from sys_.user.write(0, nbytes=8 * KiB)  # 2 pages: direct

        sim.run_process(body())
        assert sys_.host.ssd.controller.stats.prp_list_reads == 0

    @pytest.mark.parametrize("variant", ALL_VARIANTS, ids=lambda v: v.value)
    def test_no_host_cpu_on_datapath(self, variant):
        """After init the CPU does nothing (paper's headline claim, §6.3)."""
        sim, sys_ = make_system(variant, functional=False)
        sys_.host.cpu.reset_accounting()

        def body():
            yield from sys_.user.write(0, nbytes=4 * MiB)
            yield from sys_.user.read(0, 4 * MiB, functional=False)

        sim.run_process(body())
        assert sys_.host.cpu.busy_ns() == 0

    def test_p2p_traffic_only_for_uram(self):
        """URAM variant: payload crosses fpga+ssd links, never host memory."""
        sim, sys_ = make_system(StreamerVariant.URAM, functional=False)
        sys_.host.fabric.traffic.reset()

        def body():
            yield from sys_.user.write(0, nbytes=1 * MiB)

        sim.run_process(body())
        traffic = sys_.host.fabric.traffic
        assert traffic.bytes_on("host") < 64 * KiB  # admin-ish only
        assert traffic.bytes_on("fpga") >= 1 * MiB
        assert traffic.bytes_on("ssd") >= 1 * MiB

    def test_host_variant_payload_via_host_memory(self):
        sim, sys_ = make_system(StreamerVariant.HOST_DRAM, functional=False)
        sys_.host.fabric.traffic.reset()

        def body():
            yield from sys_.user.write(0, nbytes=1 * MiB)

        sim.run_process(body())
        traffic = sys_.host.fabric.traffic
        # fill crosses fpga link + host memory; controller fetch crosses ssd
        # link + host memory again
        assert traffic.bytes_on("host") >= 2 * MiB

    def test_second_bar_only_for_onboard(self):
        for variant, expected in ((StreamerVariant.URAM, False),
                                  (StreamerVariant.ONBOARD_DRAM, True),
                                  (StreamerVariant.HOST_DRAM, False)):
            _sim, sys_ = make_system(variant, functional=False)
            assert sys_.platform.uses_second_bar is expected

    def test_doorbell_written_by_fpga_not_host(self):
        sim, sys_ = make_system(StreamerVariant.URAM, functional=False)
        before = sys_.host.ssd.endpoint.link.wire_bytes["down"]

        def body():
            yield from sys_.user.write(0, nbytes=4 * KiB)

        sim.run_process(body())
        # the doorbell + SQE fetch requests arrived over the SSD's link
        assert sys_.host.ssd.endpoint.link.wire_bytes["down"] > before


class TestErrors:
    def test_unaligned_write_address_rejected(self):
        sim, sys_ = make_system(StreamerVariant.URAM)

        def body():
            yield from sys_.user.write(100, nbytes=4 * KiB)

        with pytest.raises(StreamerError):
            sim.run_process(body())

    def test_out_of_range_read_returns_error_status(self):
        sim, sys_ = make_system(StreamerVariant.URAM)
        cap = sys_.host.ssd.namespace.capacity_bytes

        def body():
            yield from sys_.user.read(cap, 4 * KiB, functional=False)

        with pytest.raises(StreamerError):
            sim.run_process(body())
        assert sys_.streamer.stats.errors == 1

    def test_out_of_range_write_error_token(self):
        sim, sys_ = make_system(StreamerVariant.URAM)
        cap = sys_.host.ssd.namespace.capacity_bytes

        def body():
            yield from sys_.user.write(cap, nbytes=4 * KiB)

        with pytest.raises(StreamerError):
            sim.run_process(body())

    def test_failed_read_beat_carries_status_meta(self):
        """A failed read's beat itself: zero bytes, TLAST, NVMe status meta."""
        sim, sys_ = make_system(StreamerVariant.URAM)
        cap = sys_.host.ssd.namespace.capacity_bytes

        def body():
            yield from sys_.user.issue_read(cap, 4 * KiB)
            flit = yield from sys_.user.rd_data.recv()
            return flit

        flit = sim.run_process(body())
        assert flit.meta["status"] == 0x80  # LBA_OUT_OF_RANGE
        assert flit.nbytes == 0 and flit.last
        assert flit.meta["addr"] == cap
        assert sys_.streamer.stats.errors == 1

    def test_failed_write_token_carries_status_meta(self):
        """A failed write's response token carries the NVMe status meta."""
        sim, sys_ = make_system(StreamerVariant.URAM)
        cap = sys_.host.ssd.namespace.capacity_bytes

        def body():
            yield from sys_.user.issue_write(cap, nbytes=4 * KiB)
            flit = yield from sys_.user.wr_resp.recv()
            return flit

        flit = sim.run_process(body())
        assert flit.meta["status"] == 0x80
        assert flit.meta["addr"] == cap
        assert sys_.streamer.stats.errors == 1


class TestBackpressure:
    def test_buffer_fills_limit_issue(self):
        """Commands outstanding never exceed what the buffer can hold."""
        sim, sys_ = make_system(StreamerVariant.URAM, functional=False)
        max_live = 0
        alloc = sys_.streamer._read_alloc
        orig = alloc.try_allocate

        def spy(n):
            nonlocal max_live
            r = orig(n)
            max_live = max(max_live, alloc.used)
            return r

        alloc.try_allocate = spy

        def body():
            yield from sys_.user.read(0, 16 * MiB, functional=False)

        sim.run_process(body())
        assert max_live <= 4 * MiB  # URAM buffer capacity

    def test_rob_window_limits_inflight(self):
        sim, sys_ = make_system(StreamerVariant.HOST_DRAM, functional=False)
        rob = sys_.streamer.rob
        peak = 0
        orig = rob.try_allocate

        def spy(e):
            nonlocal peak
            r = orig(e)
            peak = max(peak, rob.in_flight)
            return r

        rob.try_allocate = spy

        def body():
            yield from sys_.user.read(0, 96 * MiB, functional=False)

        sim.run_process(body())
        assert peak <= 64
