"""CPU thread accounting and SPDK perf-engine behaviour."""

import pytest

from repro.errors import ConfigError
from repro.nvme.spec import IoOpcode
from repro.spdk import CpuThread, SpdkPerf
from repro.systems import HostSystemConfig, build_host_system
from repro.units import KiB, MiB


class TestCpuThread:
    def test_work_accumulates_busy(self, sim):
        cpu = CpuThread(sim)

        def body():
            yield from cpu.work(100)
            yield sim.timeout(900)

        sim.run_process(body())
        assert cpu.busy_ns() == 100
        assert cpu.utilization() == pytest.approx(0.1)

    def test_spin_counts_wall_clock(self, sim):
        cpu = CpuThread(sim)

        def body():
            cpu.begin_spin()
            yield sim.timeout(500)
            cpu.end_spin()
            yield sim.timeout(500)

        sim.run_process(body())
        assert cpu.busy_ns() == 500
        assert cpu.utilization() == pytest.approx(0.5)

    def test_work_inside_spin_not_double_counted(self, sim):
        cpu = CpuThread(sim)

        def body():
            cpu.begin_spin()
            yield from cpu.work(200)
            yield sim.timeout(800)
            cpu.end_spin()

        sim.run_process(body())
        assert cpu.busy_ns() == 1000  # the spin interval, once

    def test_double_spin_rejected(self, sim):
        cpu = CpuThread(sim)
        cpu.begin_spin()
        with pytest.raises(ConfigError):
            cpu.begin_spin()

    def test_reset_accounting(self, sim):
        cpu = CpuThread(sim)

        def body():
            yield from cpu.work(100)
            cpu.reset_accounting()
            yield sim.timeout(100)

        sim.run_process(body())
        assert cpu.busy_ns() == 0

    def test_serializes_work(self, sim):
        cpu = CpuThread(sim)
        ends = []

        def worker():
            yield from cpu.work(100)
            ends.append(sim.now)

        _ = sim.process(worker())
        _ = sim.process(worker())
        sim.run()
        assert ends == [100, 200]


class TestSpdkPerfEngine:
    @pytest.fixture
    def perf(self, sim):
        system = build_host_system(sim, HostSystemConfig(functional=False))
        driver = system.spdk_driver()
        sim.run_process(driver.initialize())
        return SpdkPerf(driver)

    def test_sequential_counts_all_bytes(self, sim, perf):
        run = sim.run_process(perf.seq_read(16 * MiB, io_bytes=1 * MiB))
        assert run.total_bytes == 16 * MiB
        assert len(run.latencies_ns) == 16
        assert run.gbps > 1.0

    def test_random_respects_io_size(self, sim, perf):
        run = sim.run_process(perf.rand_write(1 * MiB, io_bytes=4 * KiB))
        assert len(run.latencies_ns) == 256

    def test_misaligned_totals_rejected(self, sim, perf):
        with pytest.raises(ConfigError):
            sim.run_process(perf.seq_read(1 * MiB + 1))

    def test_submit_split_respects_mdts(self, sim, perf):
        driver = perf.driver
        buf = driver.alloc_buffer(5 * MiB)

        def body():
            handles = yield from driver.submit_split(
                IoOpcode.WRITE, 0, 5 * MiB, buf)
            for h in handles:
                yield h.done
            return handles

        handles = sim.run_process(body())
        mdts = driver.device.config.profile.mdts_bytes
        assert len(handles) == -(-5 * MiB // mdts)
