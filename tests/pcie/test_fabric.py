"""Fabric routing: host memory DMA, P2P, MMIO, IOMMU, traffic accounting."""

import numpy as np
import pytest

from repro.errors import IommuFault, PCIeError
from repro.mem import HostDram, SramMemory
from repro.pcie import BarHandler, Iommu, LinkParams, PcieFabric
from repro.units import KiB, MiB

HOST_BASE = 0x1_0000_0000
FPGA_BAR = 0x2_0000_0000


class SramBarHandler(BarHandler):
    """BAR backed by an SRAM — what the URAM streamer exposes."""

    def __init__(self, mem: SramMemory):
        self.mem = mem

    def bar_read(self, offset, nbytes, functional=True):
        data = yield from self.mem.timed_read(offset, nbytes, functional=functional)
        return data

    def bar_write(self, offset, data=None, nbytes=None):
        yield from self.mem.timed_write(offset, data=data, nbytes=nbytes)


@pytest.fixture
def fabric(sim):
    fab = PcieFabric(sim, iommu=Iommu(enabled=False))
    host = HostDram(sim, 16 * MiB)
    fab.attach_host_memory(host, HOST_BASE)
    return fab


@pytest.fixture
def fpga(sim, fabric):
    ep = fabric.attach_endpoint("fpga", LinkParams(gen=3, lanes=16))
    sram = SramMemory(sim, 1 * MiB, name="uram")
    fabric.add_bar(ep, FPGA_BAR, 1 * MiB, SramBarHandler(sram), name="fpga.bar0")
    ep.test_sram = sram
    return ep


@pytest.fixture
def ssd(fabric):
    return fabric.attach_endpoint("ssd", LinkParams(gen=4, lanes=4))


class TestHostMemoryDma:
    def test_write_then_read_roundtrip(self, sim, fabric, ssd, rng):
        data = rng.integers(0, 256, 4096, dtype=np.uint8)

        def body():
            yield from ssd.dma_write(HOST_BASE + 0x1000, data=data)
            got = yield from ssd.dma_read(HOST_BASE + 0x1000, 4096)
            return got

        got = sim.run_process(body())
        assert np.array_equal(got, data)

    def test_read_takes_time(self, sim, fabric, ssd):
        def body():
            yield from ssd.dma_read(HOST_BASE, 4096, functional=False)

        sim.run_process(body())
        # at least: request prop + RC + memory latency + data serialization
        assert sim.now > 500

    def test_unmapped_address_raises(self, sim, fabric, ssd):
        def body():
            yield from ssd.dma_read(0xDEAD_0000, 64)

        with pytest.raises(Exception):
            sim.run_process(body())

    def test_zero_length_rejected(self, sim, fabric, ssd):
        with pytest.raises(PCIeError):
            next(ssd.dma_read(HOST_BASE, 0))
        with pytest.raises(PCIeError):
            next(ssd.dma_write(HOST_BASE, nbytes=0))


class TestP2P:
    def test_ssd_reads_fpga_bar(self, sim, fabric, fpga, ssd, rng):
        data = rng.integers(0, 256, 4096, dtype=np.uint8)
        fpga.test_sram.write(0x100, data)

        def body():
            got = yield from ssd.dma_read(FPGA_BAR + 0x100, 4096)
            return got

        got = sim.run_process(body())
        assert np.array_equal(got, data)

    def test_ssd_writes_fpga_bar(self, sim, fabric, fpga, ssd, rng):
        data = rng.integers(0, 256, 2048, dtype=np.uint8)

        def body():
            yield from ssd.dma_write(FPGA_BAR + 0x200, data=data)

        sim.run_process(body())
        assert np.array_equal(fpga.test_sram.read(0x200, 2048), data)

    def test_p2p_slower_than_host_path(self, sim, fabric, fpga, ssd):
        def p2p():
            yield from ssd.dma_read(FPGA_BAR, 4096, functional=False)

        sim.run_process(p2p())
        t_p2p = sim.now

        sim2 = type(sim)()
        fab2 = PcieFabric(sim2, iommu=Iommu(enabled=False))
        fab2.attach_host_memory(HostDram(sim2, 16 * MiB), HOST_BASE)
        ssd2 = fab2.attach_endpoint("ssd", LinkParams(gen=4, lanes=4))

        def hostp():
            yield from ssd2.dma_read(HOST_BASE, 4096, functional=False)

        sim2.run_process(hostp())
        assert t_p2p > sim2.now  # extra link + RC hop

    def test_p2p_traffic_counted_on_both_links(self, sim, fabric, fpga, ssd):
        def body():
            yield from ssd.dma_read(FPGA_BAR, 4096, functional=False)

        sim.run_process(body())
        assert fabric.traffic.bytes_on("ssd") == 4096
        assert fabric.traffic.bytes_on("fpga") == 4096
        assert fabric.traffic.bytes_on("host") == 0

    def test_host_dma_traffic_counts_once(self, sim, fabric, ssd):
        def body():
            yield from ssd.dma_write(HOST_BASE, nbytes=4096)

        sim.run_process(body())
        assert fabric.traffic.bytes_on("ssd") == 4096
        assert fabric.traffic.bytes_on("host") == 4096
        assert fabric.traffic.bytes_on("fpga") == 0


class TestMmio:
    def test_mmio_write_reaches_handler(self, sim, fabric, fpga):
        def body():
            yield from fabric.host_mmio_write(FPGA_BAR + 64, data=b"\xaa\xbb\xcc\xdd")

        sim.run_process(body())
        assert bytes(fpga.test_sram.read(64, 4)) == b"\xaa\xbb\xcc\xdd"

    def test_mmio_read_returns_data(self, sim, fabric, fpga):
        fpga.test_sram.write(128, b"\x01\x02\x03\x04")

        def body():
            got = yield from fabric.host_mmio_read(FPGA_BAR + 128, 4)
            return got

        got = sim.run_process(body())
        assert bytes(got) == b"\x01\x02\x03\x04"

    def test_mmio_to_host_memory_rejected(self, sim, fabric, fpga):
        def body():
            yield from fabric.host_mmio_write(HOST_BASE, nbytes=4)

        with pytest.raises(PCIeError):
            sim.run_process(body())

    def test_mmio_read_slower_than_write(self, sim, fabric, fpga):
        def w():
            yield from fabric.host_mmio_write(FPGA_BAR, nbytes=4)

        sim.run_process(w())
        t_w = sim.now
        sim2 = type(sim)()
        fab2 = PcieFabric(sim2, iommu=Iommu(enabled=False))
        fab2.attach_host_memory(HostDram(sim2, 1 * MiB), HOST_BASE)
        ep2 = fab2.attach_endpoint("fpga", LinkParams())
        sram2 = SramMemory(sim2, 64 * KiB)
        fab2.add_bar(ep2, FPGA_BAR, 64 * KiB, SramBarHandler(sram2))

        def r():
            yield from fab2.host_mmio_read(FPGA_BAR, 4, functional=False)

        sim2.run_process(r())
        assert sim2.now > t_w


class TestIommu:
    def test_ungranted_dma_faults(self, sim):
        fab = PcieFabric(sim, iommu=Iommu(enabled=True))
        fab.attach_host_memory(HostDram(sim, 1 * MiB), HOST_BASE)
        ep = fab.attach_endpoint("dev", LinkParams())

        def body():
            yield from ep.dma_read(HOST_BASE, 64)

        with pytest.raises(IommuFault):
            sim.run_process(body())
        assert fab.iommu.fault_count == 1

    def test_granted_dma_passes(self, sim):
        iommu = Iommu(enabled=True)
        fab = PcieFabric(sim, iommu=iommu)
        fab.attach_host_memory(HostDram(sim, 1 * MiB), HOST_BASE)
        ep = fab.attach_endpoint("dev", LinkParams())
        iommu.grant("dev", HOST_BASE, 1 * MiB)

        def body():
            yield from ep.dma_read(HOST_BASE, 64, functional=False)

        sim.run_process(body())  # no fault

    def test_partial_overlap_faults(self):
        iommu = Iommu(enabled=True)
        iommu.grant("dev", 0x1000, 0x1000)
        iommu.check("dev", 0x1000, 0x1000)
        with pytest.raises(IommuFault):
            iommu.check("dev", 0x1800, 0x1000)  # runs past the grant

    def test_disabled_iommu_allows_everything(self):
        iommu = Iommu(enabled=False)
        iommu.check("whoever", 0, 1 << 40)
        assert iommu.fault_count == 0

    def test_revoke(self):
        iommu = Iommu(enabled=True)
        iommu.grant("dev", 0, 4096)
        iommu.revoke_all("dev")
        with pytest.raises(IommuFault):
            iommu.check("dev", 0, 64)
        assert iommu.grants_of("dev") == []


class TestReadTags:
    def test_tags_limit_concurrency(self, sim):
        fab = PcieFabric(sim, iommu=Iommu(enabled=False))
        fab.attach_host_memory(HostDram(sim, 16 * MiB), HOST_BASE)
        ep1 = fab.attach_endpoint("one", LinkParams(), max_read_tags=1)

        finish = []

        def reader(ep):
            yield from ep.dma_read(HOST_BASE, 4096, functional=False)
            finish.append(sim.now)

        _ = sim.process(reader(ep1))
        _ = sim.process(reader(ep1))
        sim.run()
        # With one tag the reads fully serialize.
        assert finish[1] >= 2 * finish[0] * 0.95

    def test_endpoint_name_collision_rejected(self, sim):
        fab = PcieFabric(sim)
        fab.attach_endpoint("a", LinkParams())
        with pytest.raises(PCIeError):
            fab.attach_endpoint("a", LinkParams())
        with pytest.raises(PCIeError):
            fab.attach_endpoint("host", LinkParams())
