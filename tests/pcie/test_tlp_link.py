"""TLP packetization maths and link serialization."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.pcie import LinkParams, PcieLink, TlpParams
from repro.units import KiB, ns_for_bytes


class TestTlpParams:
    def test_data_tlps(self):
        t = TlpParams(mps=256)
        assert t.data_tlps(0) == 0
        assert t.data_tlps(1) == 1
        assert t.data_tlps(256) == 1
        assert t.data_tlps(257) == 2
        assert t.data_tlps(4096) == 16

    def test_wire_bytes(self):
        t = TlpParams(mps=256, per_tlp_overhead=24)
        assert t.wire_bytes(4096) == 4096 + 16 * 24

    def test_read_requests(self):
        t = TlpParams(mrrs=512)
        assert t.read_requests(4096) == 8
        assert t.read_requests(100) == 1
        assert t.read_requests(0) == 0

    def test_efficiency_improves_with_size(self):
        t = TlpParams()
        assert t.efficiency(64) < t.efficiency(4096)
        assert t.efficiency(0) == 0.0
        # 256B payload per ~280 wire bytes
        assert t.efficiency(1 << 20) == pytest.approx(256 / 280, rel=1e-3)

    def test_invalid_mps(self):
        with pytest.raises(ConfigError):
            TlpParams(mps=100)
        with pytest.raises(ConfigError):
            TlpParams(mrrs=64)

    @given(st.integers(min_value=0, max_value=1 << 24))
    def test_wire_bytes_monotone(self, n):
        t = TlpParams()
        assert t.wire_bytes(n) >= n
        assert t.wire_bytes(n + 1) >= t.wire_bytes(n)


class TestLinkParams:
    def test_known_rates(self):
        # Gen3 x16 = 8 GT/s * 16 * (128/130) / 8 = 15.75 GB/s
        assert LinkParams(gen=3, lanes=16).raw_gbps == pytest.approx(15.754, rel=1e-3)
        # Gen4 x4 = 16 * 4 * (128/130) / 8 = 7.88 GB/s
        assert LinkParams(gen=4, lanes=4).raw_gbps == pytest.approx(7.877, rel=1e-3)
        # Gen5 x4 doubles Gen4 x4
        assert LinkParams(gen=5, lanes=4).raw_gbps == pytest.approx(
            2 * LinkParams(gen=4, lanes=4).raw_gbps)

    def test_describe(self):
        assert "Gen4 x4" in LinkParams(gen=4, lanes=4).describe()

    def test_invalid(self):
        with pytest.raises(ConfigError):
            LinkParams(gen=7)
        with pytest.raises(ConfigError):
            LinkParams(lanes=3)
        with pytest.raises(ConfigError):
            LinkParams(chunk_bytes=100)


class TestPcieLink:
    def test_serialization_time(self, sim):
        params = LinkParams(gen=3, lanes=16, propagation_ns=0)
        link = PcieLink(sim, params)

        def body():
            yield from link.serialize("up", 64 * KiB)

        sim.run_process(body())
        wire = params.tlp.wire_bytes(64 * KiB)
        # chunked into 16 KiB pieces; each rounds up independently
        assert sim.now >= ns_for_bytes(wire, params.raw_gbps)
        assert sim.now <= ns_for_bytes(wire, params.raw_gbps) + 10

    def test_directions_independent(self, sim):
        link = PcieLink(sim, LinkParams(gen=3, lanes=16))
        finish = {}

        def mover(direction):
            yield from link.serialize(direction, 64 * KiB)
            finish[direction] = sim.now

        _ = sim.process(mover("up"))
        _ = sim.process(mover("down"))
        sim.run()
        assert finish["up"] == finish["down"]

    def test_same_direction_contends(self, sim):
        params = LinkParams(gen=3, lanes=16, propagation_ns=0)
        link = PcieLink(sim, params)
        finish = []

        def mover():
            yield from link.serialize("up", 64 * KiB)
            finish.append(sim.now)

        _ = sim.process(mover())
        _ = sim.process(mover())
        sim.run()
        # Chunked interleaving: both transfers complete around 2x solo time.
        solo = ns_for_bytes(params.tlp.wire_bytes(64 * KiB), params.raw_gbps)
        assert finish[1] >= 2 * solo * 0.95

    def test_traffic_counters(self, sim):
        link = PcieLink(sim, LinkParams())

        def body():
            yield from link.serialize("up", 4096)

        sim.run_process(body())
        assert link.wire_bytes["up"] == link.params.tlp.wire_bytes(4096)
        assert link.wire_bytes["down"] == 0
        assert link.total_wire_bytes == link.wire_bytes["up"]
        link.reset_counters()
        assert link.total_wire_bytes == 0

    def test_bad_direction(self, sim):
        link = PcieLink(sim, LinkParams())

        def body():
            yield from link.serialize("sideways", 10)

        with pytest.raises(ValueError):
            sim.run_process(body())


class TestMidTransferAccounting:
    """Wire bytes must be credited as chunks cross, not at transfer end.

    Fig 7 resets the counters after warm-up while transfers are in flight;
    end-of-transfer crediting would attribute the whole transfer to the
    wrong side of the reset.
    """

    PARAMS = LinkParams(gen=3, lanes=16, propagation_ns=0)

    def _start_transfer(self, sim, link, payload):
        def body():
            yield from link.serialize("up", payload)
        return sim.process(body())

    def test_counters_advance_per_chunk_mid_transfer(self, sim):
        link = PcieLink(sim, self.PARAMS)
        chunk = self.PARAMS.chunk_bytes
        chunk_ns = ns_for_bytes(chunk, self.PARAMS.raw_gbps)
        _ = self._start_transfer(sim, link, 64 * KiB)
        # halfway through the third chunk: exactly two chunks have crossed
        sim.run(until=2 * chunk_ns + chunk_ns // 2)
        assert link.crossed_bytes("up") == 2 * chunk
        sim.run()
        assert link.wire_bytes["up"] == self.PARAMS.tlp.wire_bytes(64 * KiB)

    def test_reset_mid_transfer_splits_attribution(self, sim):
        link = PcieLink(sim, self.PARAMS)
        chunk = self.PARAMS.chunk_bytes
        chunk_ns = ns_for_bytes(chunk, self.PARAMS.raw_gbps)
        total_wire = self.PARAMS.tlp.wire_bytes(64 * KiB)
        _ = self._start_transfer(sim, link, 64 * KiB)
        sim.run(until=2 * chunk_ns + chunk_ns // 2)
        link.reset_counters()
        assert link.total_wire_bytes == 0
        sim.run()
        # only the post-reset remainder lands in the fresh counters
        assert link.wire_bytes["up"] == total_wire - 2 * chunk

    def test_contended_transfers_credit_interleaved_chunks(self, sim):
        link = PcieLink(sim, self.PARAMS)
        chunk = self.PARAMS.chunk_bytes
        chunk_ns = ns_for_bytes(chunk, self.PARAMS.raw_gbps)
        _ = self._start_transfer(sim, link, 64 * KiB)
        _ = self._start_transfer(sim, link, 64 * KiB)
        # chunks complete back to back regardless of which flow owns them
        sim.run(until=2 * chunk_ns + chunk_ns // 2)
        assert link.crossed_bytes("up") == 2 * chunk
        sim.run()
        assert link.wire_bytes["up"] == 2 * self.PARAMS.tlp.wire_bytes(64 * KiB)

    def test_elastic_span_timing_matches_chunked_sum(self, sim):
        """An uncontended elastic span must take exactly the sum of the
        per-chunk round-ups (not one round-up of the total)."""
        link = PcieLink(sim, self.PARAMS)
        chunk = self.PARAMS.chunk_bytes
        total_wire = self.PARAMS.tlp.wire_bytes(64 * KiB)
        nfull, tail = divmod(total_wire, chunk)
        expected = nfull * ns_for_bytes(chunk, self.PARAMS.raw_gbps) \
            + ns_for_bytes(tail, self.PARAMS.raw_gbps)
        _ = self._start_transfer(sim, link, 64 * KiB)
        sim.run()
        assert sim.now == expected

    def test_late_competitor_preempts_at_chunk_boundary(self, sim):
        """A competitor arriving mid-span gets the wire at the next chunk
        boundary, exactly as under per-chunk interleaving."""
        link = PcieLink(sim, self.PARAMS)
        chunk = self.PARAMS.chunk_bytes
        chunk_ns = ns_for_bytes(chunk, self.PARAMS.raw_gbps)
        start = []

        def late_small():
            yield sim.timeout(chunk_ns + chunk_ns // 2)  # mid 2nd chunk
            start.append(sim.now)
            yield from link.serialize("up", 1024)
            start.append(sim.now)

        _ = self._start_transfer(sim, link, 64 * KiB)
        _ = sim.process(late_small())
        sim.run()
        issued, finished = start
        wire_small = self.PARAMS.tlp.wire_bytes(1024)
        small_ns = ns_for_bytes(wire_small, self.PARAMS.raw_gbps)
        # granted at the 2nd chunk's boundary, i.e. 2 * chunk_ns
        assert finished == 2 * chunk_ns + small_ns
        assert issued < 2 * chunk_ns
