"""TLP packetization maths and link serialization."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.pcie import LinkParams, PcieLink, TlpParams
from repro.units import KiB, ns_for_bytes


class TestTlpParams:
    def test_data_tlps(self):
        t = TlpParams(mps=256)
        assert t.data_tlps(0) == 0
        assert t.data_tlps(1) == 1
        assert t.data_tlps(256) == 1
        assert t.data_tlps(257) == 2
        assert t.data_tlps(4096) == 16

    def test_wire_bytes(self):
        t = TlpParams(mps=256, per_tlp_overhead=24)
        assert t.wire_bytes(4096) == 4096 + 16 * 24

    def test_read_requests(self):
        t = TlpParams(mrrs=512)
        assert t.read_requests(4096) == 8
        assert t.read_requests(100) == 1
        assert t.read_requests(0) == 0

    def test_efficiency_improves_with_size(self):
        t = TlpParams()
        assert t.efficiency(64) < t.efficiency(4096)
        assert t.efficiency(0) == 0.0
        # 256B payload per ~280 wire bytes
        assert t.efficiency(1 << 20) == pytest.approx(256 / 280, rel=1e-3)

    def test_invalid_mps(self):
        with pytest.raises(ConfigError):
            TlpParams(mps=100)
        with pytest.raises(ConfigError):
            TlpParams(mrrs=64)

    @given(st.integers(min_value=0, max_value=1 << 24))
    def test_wire_bytes_monotone(self, n):
        t = TlpParams()
        assert t.wire_bytes(n) >= n
        assert t.wire_bytes(n + 1) >= t.wire_bytes(n)


class TestLinkParams:
    def test_known_rates(self):
        # Gen3 x16 = 8 GT/s * 16 * (128/130) / 8 = 15.75 GB/s
        assert LinkParams(gen=3, lanes=16).raw_gbps == pytest.approx(15.754, rel=1e-3)
        # Gen4 x4 = 16 * 4 * (128/130) / 8 = 7.88 GB/s
        assert LinkParams(gen=4, lanes=4).raw_gbps == pytest.approx(7.877, rel=1e-3)
        # Gen5 x4 doubles Gen4 x4
        assert LinkParams(gen=5, lanes=4).raw_gbps == pytest.approx(
            2 * LinkParams(gen=4, lanes=4).raw_gbps)

    def test_describe(self):
        assert "Gen4 x4" in LinkParams(gen=4, lanes=4).describe()

    def test_invalid(self):
        with pytest.raises(ConfigError):
            LinkParams(gen=7)
        with pytest.raises(ConfigError):
            LinkParams(lanes=3)
        with pytest.raises(ConfigError):
            LinkParams(chunk_bytes=100)


class TestPcieLink:
    def test_serialization_time(self, sim):
        params = LinkParams(gen=3, lanes=16, propagation_ns=0)
        link = PcieLink(sim, params)

        def body():
            yield from link.serialize("up", 64 * KiB)

        sim.run_process(body())
        wire = params.tlp.wire_bytes(64 * KiB)
        # chunked into 16 KiB pieces; each rounds up independently
        assert sim.now >= ns_for_bytes(wire, params.raw_gbps)
        assert sim.now <= ns_for_bytes(wire, params.raw_gbps) + 10

    def test_directions_independent(self, sim):
        link = PcieLink(sim, LinkParams(gen=3, lanes=16))
        finish = {}

        def mover(direction):
            yield from link.serialize(direction, 64 * KiB)
            finish[direction] = sim.now

        _ = sim.process(mover("up"))
        _ = sim.process(mover("down"))
        sim.run()
        assert finish["up"] == finish["down"]

    def test_same_direction_contends(self, sim):
        params = LinkParams(gen=3, lanes=16, propagation_ns=0)
        link = PcieLink(sim, params)
        finish = []

        def mover():
            yield from link.serialize("up", 64 * KiB)
            finish.append(sim.now)

        _ = sim.process(mover())
        _ = sim.process(mover())
        sim.run()
        # Chunked interleaving: both transfers complete around 2x solo time.
        solo = ns_for_bytes(params.tlp.wire_bytes(64 * KiB), params.raw_gbps)
        assert finish[1] >= 2 * solo * 0.95

    def test_traffic_counters(self, sim):
        link = PcieLink(sim, LinkParams())

        def body():
            yield from link.serialize("up", 4096)

        sim.run_process(body())
        assert link.wire_bytes["up"] == link.params.tlp.wire_bytes(4096)
        assert link.wire_bytes["down"] == 0
        assert link.total_wire_bytes == link.wire_bytes["up"]
        link.reset_counters()
        assert link.total_wire_bytes == 0

    def test_bad_direction(self, sim):
        link = PcieLink(sim, LinkParams())

        def body():
            yield from link.serialize("sideways", 10)

        with pytest.raises(ValueError):
            sim.run_process(body())
