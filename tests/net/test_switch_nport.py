"""N-port switch: routing, per-port accounting, multi-hop PAUSE, drain."""

import pytest

from repro.errors import ConfigError, EthernetError, SimulationError
from repro.net import EthernetFrame, EthernetMac, EthernetSwitch
from repro.net.generator import FrameStreamSource
from repro.units import KiB, MiB


def attach(sim, sw, port, name):
    mac = EthernetMac(sim, name=name)
    mac.connect(sw.ports[port])
    return mac


class TestNPortRouting:
    def test_routes_by_meta_dst(self, sim):
        sw = EthernetSwitch(sim, n_ports=3)
        src = attach(sim, sw, 0, "src")
        dsts = [attach(sim, sw, 1, "d1"), attach(sim, sw, 2, "d2")]
        sw.add_route("d1", 1)
        sw.add_route("d2", 2)
        sw.start()
        got = {}

        def sender():
            for name in ("d1", "d2", "d1"):
                yield from src.send(
                    EthernetFrame(payload_bytes=500, meta={"dst": name}))

        def receiver(mac, n):
            for _ in range(n):
                f = yield from mac.recv()
                got.setdefault(mac.name, []).append(f.meta["dst"])

        _ = sim.process(sender())
        _ = sim.process(receiver(dsts[0], 2))
        _ = sim.process(receiver(dsts[1], 1))
        sim.run()
        assert got == {"d1": ["d1", "d1"], "d2": ["d2"]}
        assert sw.forwarded_out == [0, 2, 1]
        assert sw.forwarded_frames == 3

    def test_default_route_catches_unknown_dst(self, sim):
        sw = EthernetSwitch(sim, n_ports=3)
        src = attach(sim, sw, 0, "src")
        up = attach(sim, sw, 2, "up")
        sw.set_default_route(2)
        sw.start()
        got = []

        def sender():
            yield from src.send(
                EthernetFrame(payload_bytes=500, meta={"dst": "elsewhere"}))

        def receiver():
            f = yield from up.recv()
            got.append(f.meta["dst"])

        _ = sim.process(sender())
        _ = sim.process(receiver())
        sim.run()
        assert got == ["elsewhere"]

    def test_missing_route_is_an_error(self, sim):
        sw = EthernetSwitch(sim, n_ports=3)
        src = attach(sim, sw, 0, "src")
        sw.start()

        def sender():
            yield from src.send(
                EthernetFrame(payload_bytes=500, meta={"dst": "nowhere"}))

        _ = sim.process(sender())
        with pytest.raises(SimulationError) as exc:
            sim.run()
        assert isinstance(exc.value.__cause__, EthernetError)

    def test_hairpin_route_is_an_error(self, sim):
        sw = EthernetSwitch(sim, n_ports=3)
        src = attach(sim, sw, 0, "src")
        sw.add_route("src", 0)
        sw.start()

        def sender():
            yield from src.send(
                EthernetFrame(payload_bytes=500, meta={"dst": "src"}))

        _ = sim.process(sender())
        with pytest.raises(SimulationError) as exc:
            sim.run()
        assert isinstance(exc.value.__cause__, EthernetError)

    def test_two_port_keeps_cross_forwarding(self, sim):
        """Historical API: no routes, no meta — frames cross over."""
        sw = EthernetSwitch(sim)
        a = EthernetMac(sim, "a")
        b = EthernetMac(sim, "b")
        a.connect(sw.port_a)
        sw.port_b.connect(b)
        sw.start()
        got = []

        def sender():
            yield from a.send(EthernetFrame(payload_bytes=500))

        def receiver():
            got.append((yield from b.recv()))

        _ = sim.process(sender())
        _ = sim.process(receiver())
        sim.run()
        assert len(got) == 1 and sw.forwarded_frames == 1

    def test_validation(self, sim):
        with pytest.raises(ConfigError):
            EthernetSwitch(sim, n_ports=1)
        with pytest.raises(ConfigError):
            EthernetSwitch(sim, egress_frames=0)
        with pytest.raises(ConfigError):
            EthernetSwitch(sim, n_ports=3, port_rates=[12.5, 12.5])
        sw = EthernetSwitch(sim, n_ports=3)
        with pytest.raises(ConfigError):
            sw.add_route("x", 3)
        with pytest.raises(ConfigError):
            sw.set_default_route(-1)


class TestAccounting:
    def test_frames_balance_after_run(self, sim):
        sw = EthernetSwitch(sim, n_ports=3)
        src = attach(sim, sw, 0, "src")
        d1 = attach(sim, sw, 1, "d1")
        sw.add_route("d1", 1)
        sw.start()
        n = 20

        def sender():
            for _ in range(n):
                yield from src.send(
                    EthernetFrame(payload_bytes=2000, meta={"dst": "d1"}))

        def receiver():
            for _ in range(n):
                _ = yield from d1.recv()

        _ = sim.process(sender())
        _ = sim.process(receiver())
        sim.run()
        acct = sw.accounting()
        assert acct == {"frames_in": n, "frames_out": n, "in_flight": 0,
                        "dropped": 0}

    def test_in_flight_counts_stalled_frames(self, sim):
        """Stop mid-run: queued/held frames show up as in_flight and the
        conservation identity still balances."""
        sw = EthernetSwitch(sim, n_ports=3, egress_frames=2,
                            buffer_bytes=64 * KiB)
        src = attach(sim, sw, 0, "src")
        d1 = EthernetMac(sim, "d1", rx_fifo_bytes=64 * KiB)
        d1.connect(sw.ports[1])
        sw.add_route("d1", 1)
        sw.start()

        def sender():
            for _ in range(40):
                yield from src.send(
                    EthernetFrame(payload_bytes=8192, meta={"dst": "d1"}))

        def slow_consumer():
            while True:
                _ = yield from d1.recv()
                yield sim.timeout(5000)

        _ = sim.process(sender())
        _ = sim.process(slow_consumer())
        sim.run(until=50_000)
        acct = sw.accounting()
        assert acct["in_flight"] > 0
        assert acct["frames_in"] == acct["frames_out"] + acct["in_flight"]


class TestMultiHopPause:
    def test_incast_through_two_chained_switches(self, sim):
        """Two sources incast through edge+core switches into one slow
        sink: PAUSE must propagate sink -> core -> edge -> sources, and
        nothing may drop anywhere."""
        edge = EthernetSwitch(sim, name="edge", n_ports=3,
                              buffer_bytes=64 * KiB, egress_frames=4)
        core = EthernetSwitch(sim, name="core", n_ports=2,
                              buffer_bytes=64 * KiB, egress_frames=4)
        srcs = [attach(sim, edge, 0, "s0"), attach(sim, edge, 1, "s1")]
        edge.ports[2].connect(core.ports[0])
        edge.set_default_route(2)
        sink = EthernetMac(sim, "sink", rx_fifo_bytes=64 * KiB)
        sink.connect(core.ports[1])
        core.add_route("sink", 1)
        edge.start()
        core.start()
        n = 120
        received = []

        def sender(mac, tag):
            for i in range(n):
                yield from mac.send(EthernetFrame(
                    payload_bytes=8192,
                    meta={"dst": "sink", "tag": tag, "seq": i}))

        def slow_sink():
            for _ in range(2 * n):
                f = yield from sink.recv()
                received.append((f.meta["tag"], f.meta["seq"]))
                yield sim.timeout(8000)

        for tag, mac in enumerate(srcs):
            _ = sim.process(sender(mac, tag))
        _ = sim.process(slow_sink())
        sim.run()
        # lossless end to end, through both switches
        assert len(received) == 2 * n
        all_macs = list(edge.ports) + list(core.ports) + srcs + [sink]
        assert sum(m.dropped_frames for m in all_macs) == 0
        # per-source FIFO order survived the fabric
        for tag in (0, 1):
            seqs = [s for t, s in received if t == tag]
            assert seqs == sorted(seqs)
        # the pause chain: sink paused core, core paused edge, edge
        # paused the original senders
        assert sink.pause_frames_sent > 0
        assert core.ports[0].pause_frames_sent > 0
        assert edge.ports[0].pause_frames_sent > 0
        assert edge.ports[1].pause_frames_sent > 0
        assert all(m.tx_pause_ns > 0 for m in srcs)
        assert edge.accounting()["dropped"] == 0
        assert core.accounting()["dropped"] == 0


class TestSourceDrainSemantics:
    def test_drained_ns_is_receiver_observed_completion(self, sim):
        """``finished_ns`` stamps end-of-serialization; the last frame is
        still on the wire for ``propagation_ns`` more.  ``drained_ns`` is
        the receiver-observed completion time."""
        a = EthernetMac(sim, "a", propagation_ns=500)
        b = EthernetMac(sim, "b", propagation_ns=500)
        a.connect(b)
        src = FrameStreamSource(sim, a, total_bytes=1 * MiB)
        last_arrival = []

        def receiver():
            got = 0
            while got < 1 * MiB:
                f = yield from b.recv()
                got += f.payload_bytes
                if got >= 1 * MiB:
                    last_arrival.append(sim.now)

        src.start()
        _ = sim.process(receiver())
        sim.run()
        assert src.finished_ns is not None
        assert src.drained_ns == src.finished_ns + 500
        assert last_arrival == [src.drained_ns]

    def test_drained_ns_none_until_finished(self, sim):
        a = EthernetMac(sim, "a")
        b = EthernetMac(sim, "b")
        a.connect(b)
        src = FrameStreamSource(sim, a, total_bytes=64 * KiB)
        assert src.drained_ns is None
