"""Ethernet: frames, MAC flow control, switch pause propagation, sources."""

import numpy as np
import pytest

from repro.errors import ConfigError, EthernetError
from repro.net import (EthernetFrame, EthernetMac, EthernetSwitch,
                       FrameStreamSource, pause_frame)
from repro.sim import Simulator
from repro.units import KiB, MiB, ns_for_bytes


def linked_pair(sim, **kw):
    a = EthernetMac(sim, name="a", **kw)
    b = EthernetMac(sim, name="b", **kw)
    a.connect(b)
    return a, b


class TestFrame:
    def test_wire_overhead(self):
        f = EthernetFrame(payload_bytes=8192)
        assert f.wire_bytes == 8192 + 38

    def test_min_frame_padding(self):
        assert EthernetFrame(payload_bytes=1).wire_bytes == 64 + 38

    def test_pause_frame(self):
        p = pause_frame(0xFFFF)
        assert p.is_pause and p.pause_quanta == 0xFFFF

    def test_oversize_rejected(self):
        with pytest.raises(EthernetError):
            EthernetFrame(payload_bytes=10_000)

    def test_data_length_checked(self):
        with pytest.raises(EthernetError):
            EthernetFrame(payload_bytes=10, data=np.zeros(5, dtype=np.uint8))


class TestMacBasics:
    def test_frame_delivery_with_data(self, sim, rng):
        a, b = linked_pair(sim)
        payload = rng.integers(0, 256, 1000, dtype=np.uint8)
        got = []

        def sender():
            yield from a.send(EthernetFrame(payload_bytes=1000, data=payload))

        def receiver():
            f = yield from b.recv()
            got.append(f)

        _ = sim.process(sender())
        _ = sim.process(receiver())
        sim.run()
        assert np.array_equal(got[0].data, payload)

    def test_line_rate_serialization(self, sim):
        a, b = linked_pair(sim, propagation_ns=0)
        n_frames = 100

        def sender():
            for _ in range(n_frames):
                yield from a.send(EthernetFrame(payload_bytes=8192))

        def receiver():
            for _ in range(n_frames):
                yield from b.recv()

        _ = sim.process(sender())
        done = sim.process(receiver())
        sim.run()
        wire = n_frames * (8192 + 38)
        assert sim.now >= ns_for_bytes(wire, 12.5)
        assert sim.now <= ns_for_bytes(wire, 12.5) * 1.02
        assert b.rx_frames == n_frames

    def test_unconnected_send_rejected(self, sim):
        a = EthernetMac(sim)

        def body():
            yield from a.send(EthernetFrame(payload_bytes=64))

        with pytest.raises(EthernetError):
            sim.run_process(body())

    def test_double_connect_rejected(self, sim):
        a, b = linked_pair(sim)
        with pytest.raises(EthernetError):
            a.connect(EthernetMac(sim))


class TestFlowControl:
    def test_no_loss_under_slow_consumer(self, sim):
        """The headline property: a stalled receiver loses nothing."""
        a, b = linked_pair(sim, rx_fifo_bytes=64 * KiB)
        n = 200
        received = []

        def sender():
            for i in range(n):
                yield from a.send(EthernetFrame(payload_bytes=8192,
                                                meta={"seq": i}))

        def slow_consumer():
            for _ in range(n):
                f = yield from b.recv()
                received.append(f.meta["seq"])
                yield sim.timeout(3000)  # much slower than line rate

        _ = sim.process(sender())
        _ = sim.process(slow_consumer())
        sim.run()
        assert received == list(range(n))
        assert b.dropped_frames == 0
        assert b.pause_frames_sent > 0
        assert a.tx_pause_ns > 0

    def test_loss_without_flow_control(self, sim):
        """Ablation A7: same workload, flow control off -> drops."""
        a, b = linked_pair(sim, rx_fifo_bytes=64 * KiB, flow_control=False)
        n = 200

        def sender():
            for i in range(n):
                yield from a.send(EthernetFrame(payload_bytes=8192))

        def slow_consumer():
            while True:
                yield from b.recv()
                yield sim.timeout(3000)

        _ = sim.process(sender())
        _ = sim.process(slow_consumer())
        sim.run(until=10_000_000)
        assert b.dropped_frames > 0

    def test_started_frame_finishes_before_pause(self, sim):
        """Pause takes effect only at frame boundaries (store-and-forward)."""
        a, b = linked_pair(sim)
        a._on_frame(pause_frame(0xFFFF))  # XOFF arrives
        assert a.is_paused
        a._on_frame(pause_frame(0))
        assert not a.is_paused

    def test_throughput_matches_consumer_rate(self, sim):
        """Under backpressure the sender converges to the consumer's rate."""
        a, b = linked_pair(sim, rx_fifo_bytes=64 * KiB)
        n = 300
        per_frame_ns = 2000

        def sender():
            for _ in range(n):
                yield from a.send(EthernetFrame(payload_bytes=8192))

        def consumer():
            for _ in range(n):
                yield from b.recv()
                yield sim.timeout(per_frame_ns)

        _ = sim.process(sender())
        done = sim.process(consumer())
        # run_until, not run(): draining the heap would also play out any
        # still-armed 802.3x pause-expiry watchdog, inflating sim.now
        sim.run_until(done)
        # elapsed ~= n * consumer_period (within buffer slack)
        assert sim.now >= n * per_frame_ns
        assert sim.now <= n * per_frame_ns * 1.2

    def test_pause_expires_without_xon(self, sim):
        """802.3x: an XOFF is for quanta x 512 bit-times, not forever.

        Regression test for the lost-XON hang: the XON never arrives here
        (nothing is wired to send one), yet TX must resume once the
        advertised quanta elapse.
        """
        a, b = linked_pair(sim, propagation_ns=0)
        quanta = 1000
        a._on_frame(pause_frame(quanta))
        assert a.is_paused
        pause_ns = a.pause_quanta_ns(quanta)
        assert pause_ns == ns_for_bytes(quanta * 64, 12.5)

        def sender():
            yield from a.send(EthernetFrame(payload_bytes=512))

        done = sim.process(sender())
        sim.run_until(done)
        assert not a.is_paused
        assert a.tx_frames == 1
        assert a.tx_pause_ns >= pause_ns  # waited the full advertised pause
        assert sim.now <= pause_ns + ns_for_bytes(512 + 38, 12.5) + 1

    def test_xoff_refresh_extends_pause(self, sim):
        """A fresh XOFF pushes the expiry deadline forward."""
        a, _ = linked_pair(sim)
        a._on_frame(pause_frame(10))
        first_deadline = a._pause_until
        sim.run(until=a.pause_quanta_ns(5))
        a._on_frame(pause_frame(10))  # refresh halfway through
        assert a._pause_until > first_deadline
        assert a.is_paused
        sim.run()  # drain: the (single) watchdog expires the refreshed pause
        assert not a.is_paused

    def test_overrun_sends_xoff(self, sim):
        """An overrun drop must pause the sender even below the watermark.

        A single frame larger than the free FIFO space dies on arrival
        without ever reaching the high-watermark check, so the drop path
        itself has to raise XOFF.
        """
        a, b = linked_pair(sim, rx_fifo_bytes=4 * KiB)
        b._on_frame(EthernetFrame(payload_bytes=8192))
        assert b.dropped_frames == 1
        assert b.pause_frames_sent == 1  # the drop itself raised XOFF
        sim.run(until=2000)  # long enough for the XOFF, well short of expiry
        assert a.is_paused


class TestSwitch:
    def test_forwarding(self, sim, rng):
        src, sw_in = EthernetMac(sim, "src"), None
        sw = EthernetSwitch(sim)
        dst = EthernetMac(sim, "dst")
        src.connect(sw.port_a)
        sw.port_b.connect(dst)
        sw.start()
        payload = rng.integers(0, 256, 500, dtype=np.uint8)
        got = []

        def sender():
            yield from src.send(EthernetFrame(payload_bytes=500, data=payload))

        def receiver():
            f = yield from dst.recv()
            got.append(f)

        _ = sim.process(sender())
        _ = sim.process(receiver())
        sim.run()
        assert np.array_equal(got[0].data, payload)
        assert sw.forwarded_frames == 1

    def test_pause_propagates_through_switch(self, sim):
        """Paper: the switch pauses locally, then pushes pause upstream."""
        src = EthernetMac(sim, "src")
        sw = EthernetSwitch(sim, buffer_bytes=64 * KiB)
        dst = EthernetMac(sim, "dst", rx_fifo_bytes=64 * KiB)
        src.connect(sw.port_a)
        sw.port_b.connect(dst)
        sw.start()
        n = 300
        received = []

        def sender():
            for i in range(n):
                yield from src.send(EthernetFrame(payload_bytes=8192,
                                                  meta={"seq": i}))

        def slow_consumer():
            for _ in range(n):
                f = yield from dst.recv()
                received.append(f.meta["seq"])
                yield sim.timeout(5000)

        _ = sim.process(sender())
        _ = sim.process(slow_consumer())
        sim.run()
        assert received == list(range(n))
        assert dst.dropped_frames == 0
        assert sw.port_a.dropped_frames == 0
        # the end receiver paused the switch AND the switch paused the source
        assert dst.pause_frames_sent > 0
        assert sw.port_a.pause_frames_sent > 0
        assert src.tx_pause_ns > 0


class TestFrameStreamSource:
    def test_streams_all_bytes_with_content(self, sim):
        a, b = linked_pair(sim)
        blob = np.arange(100_000, dtype=np.uint64).view(np.uint8)
        src = FrameStreamSource(sim, a, total_bytes=len(blob),
                                payload_fn=lambda off, n: blob[off:off + n])
        out = []

        def receiver():
            got = 0
            while got < len(blob):
                f = yield from b.recv()
                out.append(f.data)
                got += f.payload_bytes

        src.start()
        _ = sim.process(receiver())
        sim.run()
        assert np.array_equal(np.concatenate(out), blob)

    def test_invalid_params(self, sim):
        a, _ = linked_pair(sim)
        with pytest.raises(ConfigError):
            FrameStreamSource(sim, a, total_bytes=0)
        with pytest.raises(ConfigError):
            FrameStreamSource(sim, a, total_bytes=10, frame_payload=0)


class TestFrameSlots:
    """slots=True on the hot train-path dataclasses must not change
    construction semantics: meta and PAUSE validation round-trip exactly
    as before, and the per-instance __dict__ is actually gone."""

    def test_no_instance_dict(self):
        f = EthernetFrame(payload_bytes=100)
        assert not hasattr(f, "__dict__")
        with pytest.raises(AttributeError):
            f.unknown_attribute = 1

    def test_meta_round_trips(self):
        meta = {"stream": 7, "kind": "resp", "last": True}
        f = EthernetFrame(payload_bytes=8192, meta=meta)
        assert f.meta is meta
        assert f.meta["stream"] == 7
        # default meta is a fresh dict per instance, not shared
        g, h = EthernetFrame(payload_bytes=1), EthernetFrame(payload_bytes=1)
        g.meta["x"] = 1
        assert h.meta == {}

    def test_pause_validation_round_trips(self):
        p = pause_frame(0xFFFF)
        assert p.is_pause and p.pause_quanta == 0xFFFF
        assert pause_frame(0).pause_quanta == 0
        with pytest.raises(EthernetError):
            EthernetFrame(payload_bytes=100, ethertype=0x8808)

    def test_payload_and_data_validation_round_trips(self):
        with pytest.raises(EthernetError):
            EthernetFrame(payload_bytes=0)
        with pytest.raises(EthernetError):
            EthernetFrame(payload_bytes=9001)
        with pytest.raises(EthernetError):
            EthernetFrame(payload_bytes=8,
                          data=np.zeros(4, dtype=np.uint8))

    def test_other_hot_dataclasses_are_slotted(self):
        from repro.fleet.workload import Request
        from repro.fpga.axi import StreamFlit
        flit = StreamFlit(nbytes=64, meta={"tag": 3})
        assert not hasattr(flit, "__dict__")
        assert flit.meta["tag"] == 3
        req = Request(issue_ns=0, stream=1, object_id=2, size_bytes=3)
        assert not hasattr(req, "__dict__")
