"""Train-vs-per-frame exact equivalence: the DESIGN.md §11 contract.

Seeded property sweeps assert that every observable stat of the
frame-train fast path is **exactly** what the per-frame reference path
produces — never approximately.  Two layers:

* MAC-level: randomized burst schedules against a slow/fast receiver,
  sweeping payload mix (odd tails included), RX FIFO size (and with it
  the PAUSE watermark), receiver consumption rate (forcing XOFF-driven
  mid-burst splits), a competing sender (forcing contention splits), and
  attached fault plans across ``rate_scale`` values (a full fast-path
  disqualifier).
* Fleet-level: end-to-end ``run_fleet``/``run_incast`` across object
  size ranges, Zipf skews, and switch buffer sizes (the fleet's PAUSE
  watermark), comparing the entire :class:`FleetResult` exactly.

Any assertion here failing means the fast path changed an observable —
the one thing it is contractually forbidden to do.
"""

import json

import pytest

from repro.faults import FaultConfig, FaultPlan
from repro.fleet import FleetConfig, FleetWorkload, run_fleet, run_incast
from repro.net import EthernetFrame, EthernetMac
from repro.sim import Simulator
from repro.sim.stats import FaultStats
from repro.units import KiB

MODES = ("train", "per_frame")


def _run_mac_case(coarsening, bursts, *, rx_fifo_bytes=64 * KiB,
                  consume_gap_ns=0, contender=None, fault_rate=0.0,
                  rate_scale=1.0):
    """One seeded MAC scenario; returns every observable as a dict.

    *bursts* is ``[(gap_ns, [payload, ...]), ...]``; the sender sleeps
    the gap then ships the burst (as one ``send_train`` in train mode,
    as per-frame ``send`` calls otherwise).  *contender* is an optional
    ``(start_ns, [payload, ...])`` second process on the same MAC — the
    contention disqualifier.  A non-zero *fault_rate* attaches a seeded
    fault plan (scaled by *rate_scale*), which disqualifies the fast
    path entirely; equality must then be trivial but is still asserted.
    """
    sim = Simulator()
    a = EthernetMac(sim, name="a", coarsening=coarsening,
                    rx_fifo_bytes=rx_fifo_bytes)
    b = EthernetMac(sim, name="b", coarsening=coarsening,
                    rx_fifo_bytes=rx_fifo_bytes)
    a.connect(b)
    stats = FaultStats()
    if fault_rate > 0:
        plan = FaultPlan(FaultConfig(eth_data_drop_rate=fault_rate))
        plan.rate_scale = rate_scale
        a.attach_faults(plan, stats)

    total = sum(len(sizes) for _, sizes in bursts)
    if contender is not None:
        total += len(contender[1])
    deliveries = []

    def ship(frames):
        if coarsening == "train":
            yield from a.send_train(frames)
        else:
            for frame in frames:
                yield from a.send(frame)

    def sender():
        for gap_ns, sizes in bursts:
            if gap_ns:
                yield sim.timeout(gap_ns)
            yield from ship([EthernetFrame(payload_bytes=s) for s in sizes])

    def compete():
        start_ns, sizes = contender
        yield sim.timeout(start_ns)
        yield from ship([EthernetFrame(payload_bytes=s) for s in sizes])

    def receiver():
        while True:
            frame = yield from b.recv()
            deliveries.append((sim.now, frame.payload_bytes))
            if consume_gap_ns:
                yield sim.timeout(consume_gap_ns)

    _ = sim.process(sender())
    if contender is not None:
        _ = sim.process(compete())
    _ = sim.process(receiver())
    sim.run()
    return {
        "deliveries": deliveries,
        "now": sim.now,
        "a_tx_frames": a.tx_frames,
        "a_tx_pause_ns": a.tx_pause_ns,
        "a_dropped": a.dropped_frames,
        "b_rx_frames": b.rx_frames,
        "b_dropped": b.dropped_frames,
        "b_pause_sent": b.pause_frames_sent,
        "delivered": len(deliveries),
        "expected": total,
        "faults_dropped": stats.eth_data_dropped,
    }


def _assert_modes_equal(case_kwargs, bursts):
    got = {mode: _run_mac_case(mode, bursts, **case_kwargs)
           for mode in MODES}
    assert got["train"] == got["per_frame"], (
        f"train diverged from per_frame for {case_kwargs}")
    return got["train"]


class TestMacTrainEquivalence:
    def test_uncontended_uniform_bursts(self):
        # the pure fast path: big headroom, instant consumer
        stats = _assert_modes_equal(
            dict(rx_fifo_bytes=256 * KiB),
            [(0, [8192] * 8), (3000, [8192] * 16), (0, [8192] * 3)])
        assert stats["delivered"] == 27
        assert stats["b_pause_sent"] == 0

    def test_odd_tail_carried(self):
        # 64 KiB chunks at 8192 payload leave a 616-byte remainder: the
        # tail-carrying train must match the per-frame tail send exactly
        _assert_modes_equal(
            dict(rx_fifo_bytes=256 * KiB),
            [(0, [8192] * 8 + [616]), (2000, [8192] + [616]),
             (1000, [4096] * 5 + [100])])

    def test_watermark_split_slow_consumer(self):
        # small FIFO + slow consumer: XOFF fires mid-run, trains must
        # split and re-fill with identical PAUSE traffic and timing
        stats = _assert_modes_equal(
            dict(rx_fifo_bytes=32 * KiB, consume_gap_ns=4000),
            [(0, [8192] * 24), (500, [2048] * 40)])
        assert stats["b_pause_sent"] > 0, "case never tripped the watermark"
        assert stats["a_tx_pause_ns"] > 0
        # overruns before the XOFF lands are legitimate 802.3x losses at
        # this FIFO size; conservation (not losslessness) is the invariant
        assert stats["delivered"] == stats["expected"] - stats["b_dropped"]

    def test_contention_split(self):
        # a competing sender lands mid-train: the contention callback
        # must split the train at the exact frame boundary the per-frame
        # path would interleave at
        stats = _assert_modes_equal(
            dict(rx_fifo_bytes=256 * KiB,
                 contender=(9000, [1024] * 6)),
            [(0, [8192] * 20)])
        assert stats["delivered"] == 26

    def test_fault_plan_disqualifies(self):
        # attached fault sites force the reference path in both modes;
        # sweep rate_scale to move the seeded drop positions around
        for rate_scale in (0.0, 1.0, 3.0):
            stats = _assert_modes_equal(
                dict(rx_fifo_bytes=256 * KiB, fault_rate=0.05,
                     rate_scale=rate_scale),
                [(0, [8192] * 12), (2000, [8192] * 12 + [616])])
            if rate_scale == 0.0:
                assert stats["faults_dropped"] == 0
            assert (stats["delivered"]
                    == stats["expected"] - stats["faults_dropped"])

    def test_seeded_random_sweep(self):
        # property sweep: random burst schedules x FIFO sizes x consumer
        # speeds, all compared exactly
        import numpy as np
        rng = np.random.default_rng(0x7EA1)
        for case in range(6):
            fifo = int(rng.choice([16, 64, 256])) * KiB
            gap = int(rng.choice([0, 800, 6000]))
            bursts = []
            for _ in range(int(rng.integers(1, 4))):
                payload = int(rng.choice([1024, 4096, 8192]))
                n = int(rng.integers(1, 24))
                sizes = [payload] * n
                if rng.random() < 0.5:
                    sizes.append(int(rng.integers(64, payload)))
                bursts.append((int(rng.integers(0, 8000)), sizes))
            stats = _assert_modes_equal(
                dict(rx_fifo_bytes=fifo, consume_gap_ns=gap), bursts)
            assert (stats["delivered"]
                    == stats["expected"] - stats["b_dropped"])


def _canon(result):
    return json.dumps(result.as_dict(), sort_keys=True, default=str)


class TestFleetTrainEquivalence:
    @pytest.mark.parametrize("zipf_skew,size_range,buffer_kib", [
        (0.6, (16 * KiB, 256 * KiB), 256),   # mild skew, default buffer
        (1.3, (4 * KiB, 1024 * KiB), 256),   # hot head, big objects
        (0.9, (16 * KiB, 512 * KiB), 64),    # tight PAUSE watermark
    ])
    def test_fleet_get_sweep(self, zipf_skew, size_range, buffer_kib):
        workload = FleetWorkload(
            n_objects=96, n_requests=120, zipf_skew=zipf_skew,
            min_object_bytes=size_range[0], max_object_bytes=size_range[1],
            mean_interarrival_ns=3000, seed=0xFEED)
        results = {
            mode: run_fleet(FleetConfig(
                n_nodes=2, switch_buffer_bytes=buffer_kib * KiB,
                coarsening=mode), workload)
            for mode in MODES}
        assert _canon(results["train"]) == _canon(results["per_frame"])
        assert results["train"].completed == 120
        assert results["train"].dropped_frames == 0

    def test_incast_sweep(self):
        # incast floods both switch tiers with PAUSE: the harshest
        # split-pressure the fleet can generate
        results = {
            mode: run_incast(FleetConfig(n_nodes=1, n_gateways=3,
                                         coarsening=mode),
                             put_bytes=512 * KiB)
            for mode in MODES}
        assert _canon(results["train"]) == _canon(results["per_frame"])
        assert results["train"].spine_pause_frames > 0
